"""Data artifacts: rule-based perturbations of record groups.

Section 3.2 of the paper lists the artifact families applied to the seed
records to recreate the matching challenges of the real financial data.
Each artifact here mutates a :class:`~repro.datagen.drafts.CompanyGroupDraft`
in place (or a pair of drafts for the cross-group acquisition / merger
events).  Artifacts are deliberately small and composable: the generator
draws a random combination per group and applies them sequentially.

Company artifacts
-----------------
* :class:`AcronymName` — swap the name for its acronym in some sources.
* :class:`InsertCorporateTerm` — insert a corporate suffix term in the name.
* :class:`ReorderNameTokens` — "Crowdstrike Holdings" → "Holdings Crowdstrike".
* :class:`TypoName` — character-level noise in the name.
* :class:`ParaphraseAttribute` — rule-based paraphrase of the description
  (the Pegasus substitute, see DESIGN.md substitution 5).
* :class:`DropAttributes` — blank out attributes in some sources.
* :class:`CreateCorporateAcquisition` — cross-group: acquiree records in some
  sources are overwritten with the acquirer's attributes; all records of both
  groups become one ground-truth group.
* :class:`CreateCorporateMerger` — cross-group: identifier cross-
  contamination without a ground-truth match.

Security artifacts
------------------
* :class:`MultipleIDs` — extra identifier bundles assigned inconsistently.
* :class:`NoIdOverlaps` — wipe identifier overlaps inside a group.
* :class:`MultipleSecurities` — add securities of other types to the issuer.
* :class:`CorruptIdentifier` — single-character identifier typos.
"""

from __future__ import annotations

import random
import re
from abc import ABC, abstractmethod

from repro.datagen import vocab
from repro.datagen.drafts import CompanyGroupDraft, SecurityDraft
from repro.datagen.identifiers import (
    SECURITY_ID_FIELDS,
    corrupt_identifier,
    make_security_identifiers,
    make_ticker,
)
from repro.text.normalize import acronym_of


class DataArtifact(ABC):
    """Base class for single-group data artifacts."""

    #: Human-readable artifact name recorded on the draft for provenance.
    name: str = "artifact"

    @abstractmethod
    def apply(self, draft: CompanyGroupDraft, rng: random.Random) -> None:
        """Mutate ``draft`` in place."""

    def _sample_sources(
        self, draft: CompanyGroupDraft, rng: random.Random, minimum: int = 1
    ) -> list[str]:
        """Pick a random non-empty strict subset of the group's sources.

        Applying an artifact to *some but not all* sources is what creates
        the cross-source inconsistency that makes matching hard; applying it
        everywhere would merely rename the entity.
        """
        sources = draft.sources()
        if len(sources) <= 1:
            return list(sources)
        upper = max(minimum, len(sources) - 1)
        count = rng.randint(minimum, upper)
        return rng.sample(sources, count)


class PairArtifact(ABC):
    """Base class for cross-group (two-draft) artifacts."""

    name: str = "pair-artifact"

    @abstractmethod
    def apply_pair(
        self,
        primary: CompanyGroupDraft,
        secondary: CompanyGroupDraft,
        rng: random.Random,
    ) -> None:
        """Mutate both drafts in place."""


# ---------------------------------------------------------------------------
# Company artifacts
# ---------------------------------------------------------------------------


class AcronymName(DataArtifact):
    """Swap a company name with its acronym in a subset of sources."""

    name = "AcronymName"

    def apply(self, draft: CompanyGroupDraft, rng: random.Random) -> None:
        acronym = acronym_of(draft.seed.name).upper()
        if len(acronym) < 2:
            return
        for source in self._sample_sources(draft, rng):
            draft.company_records[source]["name"] = acronym
        draft.mark(self.name)


class InsertCorporateTerm(DataArtifact):
    """Insert a corporate term (Inc. / Limited / Corp …) into the name."""

    name = "InsertCorporateTerm"

    def apply(self, draft: CompanyGroupDraft, rng: random.Random) -> None:
        term = rng.choice(vocab.CORPORATE_SUFFIXES)
        for source in self._sample_sources(draft, rng):
            record = draft.company_records[source]
            current = str(record.get("name") or draft.seed.name)
            if term.lower().rstrip(".") in current.lower():
                continue
            record["name"] = f"{current} {term}"
        draft.mark(self.name)


class ReorderNameTokens(DataArtifact):
    """Reorder the tokens of a multi-word name in a subset of sources."""

    name = "ReorderNameTokens"

    def apply(self, draft: CompanyGroupDraft, rng: random.Random) -> None:
        for source in self._sample_sources(draft, rng):
            record = draft.company_records[source]
            tokens = str(record.get("name") or "").split()
            if len(tokens) < 2:
                continue
            rotated = tokens[1:] + tokens[:1]
            record["name"] = " ".join(rotated)
        draft.mark(self.name)


class TypoName(DataArtifact):
    """Introduce a single character typo into the name in one source."""

    name = "TypoName"

    _OPERATIONS = ("swap", "drop", "duplicate")

    def apply(self, draft: CompanyGroupDraft, rng: random.Random) -> None:
        sources = self._sample_sources(draft, rng)
        if not sources:
            return
        source = rng.choice(sources)
        record = draft.company_records[source]
        name = str(record.get("name") or "")
        if len(name) < 4:
            return
        position = rng.randrange(1, len(name) - 1)
        operation = rng.choice(self._OPERATIONS)
        if operation == "swap":
            mutated = (
                name[:position]
                + name[position + 1]
                + name[position]
                + name[position + 2:]
            )
        elif operation == "drop":
            mutated = name[:position] + name[position + 1:]
        else:
            mutated = name[:position] + name[position] + name[position:]
        record["name"] = mutated
        draft.mark(self.name)


class ParaphraseAttribute(DataArtifact):
    """Paraphrase the description via synonym substitution and truncation.

    Stand-in for the Pegasus summarisation model used by the paper (see
    DESIGN.md).  The effect that matters downstream is identical: matching
    records stop sharing description tokens verbatim.
    """

    name = "ParaphraseAttribute"

    def apply(self, draft: CompanyGroupDraft, rng: random.Random) -> None:
        for source in self._sample_sources(draft, rng):
            record = draft.company_records[source]
            description = str(record.get("description") or "")
            if not description:
                continue
            record["description"] = self.paraphrase(description, rng)
        draft.mark(self.name)

    @staticmethod
    def paraphrase(text: str, rng: random.Random) -> str:
        words = text.split()
        rewritten: list[str] = []
        for word in words:
            bare = re.sub(r"[^\w-]", "", word).lower()
            replacement = vocab.PARAPHRASE_SYNONYMS.get(bare)
            if replacement and rng.random() < 0.8:
                rewritten.append(replacement)
            else:
                rewritten.append(word)
        # Occasionally summarise by dropping a trailing clause.
        if len(rewritten) > 8 and rng.random() < 0.5:
            rewritten = rewritten[: rng.randint(6, len(rewritten) - 2)]
        return " ".join(rewritten)


class DropAttributes(DataArtifact):
    """Blank out optional attributes in a subset of sources (missing data)."""

    name = "DropAttributes"

    _DROPPABLE = ("city", "region", "country_code", "description", "industry")

    def apply(self, draft: CompanyGroupDraft, rng: random.Random) -> None:
        for source in self._sample_sources(draft, rng):
            record = draft.company_records[source]
            to_drop = rng.sample(self._DROPPABLE, rng.randint(1, 3))
            for attribute in to_drop:
                record[attribute] = None
        draft.mark(self.name)


# ---------------------------------------------------------------------------
# Cross-group events (data drift)
# ---------------------------------------------------------------------------


class CreateCorporateAcquisition(PairArtifact):
    """Simulate an acquisition: the acquirer absorbs the acquiree.

    In the data sources that *recorded* the event, the acquiree's records are
    overwritten with the acquirer's name and identifiers; sources that missed
    the event keep the stale attributes.  Following the paper, **all** records
    of both groups are true matches afterwards, so the acquiree draft's
    entity id is rewritten to the acquirer's.  The stale records can then
    only be matched transitively, via the overwritten records.
    """

    name = "CreateCorporateAcquisition"

    def apply_pair(
        self,
        primary: CompanyGroupDraft,
        secondary: CompanyGroupDraft,
        rng: random.Random,
    ) -> None:
        acquirer, acquiree = primary, secondary
        acquiree.acquired_by = acquirer.entity_id
        acquiree.entity_id = acquirer.entity_id

        updated_sources = [
            source for source in acquiree.sources() if rng.random() < 0.6
        ]
        if not updated_sources and acquiree.sources():
            updated_sources = [rng.choice(acquiree.sources())]

        for source in updated_sources:
            record = acquiree.company_records[source]
            record["name"] = acquirer.seed.name
            record["city"] = acquirer.seed.city
            record["region"] = acquirer.seed.region
            record["country_code"] = acquirer.seed.country_code

        # The acquiree's securities are re-issued under the acquirer: in the
        # sources that recorded the event, identifiers are overwritten with
        # those of one of the acquirer's securities.  Following the paper,
        # every record involved in the acquisition is a true match, so the
        # acquiree's securities join the acquirer security's ground-truth
        # group; the stale records (sources that missed the event) keep old
        # names and identifiers and are only reachable transitively.
        if acquirer.securities and acquiree.securities:
            acquirer_security = rng.choice(acquirer.securities)
            for security in acquiree.securities:
                security.entity_id = acquirer_security.entity_id
                security_updated = [
                    source for source in security.sources() if source in updated_sources
                ]
                for source in security_updated:
                    record = security.records[source]
                    for field_name in SECURITY_ID_FIELDS:
                        record[field_name] = acquirer_security.identifiers.get(field_name)
                    record["issuer_name"] = acquirer.seed.name

        acquirer.mark(self.name)
        acquiree.mark(self.name)


class CreateCorporateMerger(PairArtifact):
    """Simulate a merger: identifier cross-contamination without a match.

    A new merged entity is created in the real world, but per the paper no
    records are deleted and the original companies' records are *not*
    considered matches.  Some sources overwrite identifiers of one partner
    with those of the other, which later produces ID-overlap candidate pairs
    that are **not** true matches — the hard negatives of the ID blocking.
    """

    name = "CreateCorporateMerger"

    def apply_pair(
        self,
        primary: CompanyGroupDraft,
        secondary: CompanyGroupDraft,
        rng: random.Random,
    ) -> None:
        primary.merged_with = secondary.entity_id
        secondary.merged_with = primary.entity_id

        if primary.securities and secondary.securities:
            donor_security = rng.choice(primary.securities)
            receiver_security = rng.choice(secondary.securities)
            contaminated_sources = [
                source
                for source in receiver_security.sources()
                if rng.random() < 0.5
            ]
            if not contaminated_sources and receiver_security.sources():
                contaminated_sources = [rng.choice(receiver_security.sources())]
            for source in contaminated_sources:
                record = receiver_security.records[source]
                overwritten = rng.sample(
                    SECURITY_ID_FIELDS, rng.randint(1, len(SECURITY_ID_FIELDS))
                )
                for field_name in overwritten:
                    record[field_name] = donor_security.identifiers.get(field_name)

        primary.mark(self.name)
        secondary.mark(self.name)


# ---------------------------------------------------------------------------
# Security artifacts
# ---------------------------------------------------------------------------


class MultipleIDs(DataArtifact):
    """Create new identifiers and assign them to some records of a security.

    Afterwards the group's records carry two (partially overlapping)
    identifier bundles, so naive exact-ID matching splits the group.
    """

    name = "MultipleIDs"

    def apply(self, draft: CompanyGroupDraft, rng: random.Random) -> None:
        if not draft.securities:
            return
        security = rng.choice(draft.securities)
        alternative = make_security_identifiers(rng)
        sources = security.sources()
        if len(sources) < 2:
            return
        switched = rng.sample(sources, rng.randint(1, len(sources) - 1))
        fields_to_switch = rng.sample(
            SECURITY_ID_FIELDS, rng.randint(1, len(SECURITY_ID_FIELDS))
        )
        for source in switched:
            record = security.records[source]
            for field_name in fields_to_switch:
                record[field_name] = alternative[field_name]
        draft.mark(self.name)


class NoIdOverlaps(DataArtifact):
    """Wipe all identifier overlaps among the records of a security group.

    Every record receives a fresh, unique identifier bundle, so the group can
    only be matched through its issuer (Issuer Match blocking) or its textual
    attributes.
    """

    name = "NoIdOverlaps"

    def apply(self, draft: CompanyGroupDraft, rng: random.Random) -> None:
        if not draft.securities:
            return
        security = rng.choice(draft.securities)
        for source in security.sources():
            fresh = make_security_identifiers(rng)
            record = security.records[source]
            for field_name in SECURITY_ID_FIELDS:
                record[field_name] = fresh[field_name]
        draft.mark(self.name)


class MultipleSecurities(DataArtifact):
    """Add new securities of different types (rights, bonds, units …)."""

    name = "MultipleSecurities"

    def apply(self, draft: CompanyGroupDraft, rng: random.Random) -> None:
        if not draft.company_records:
            return
        extra_types = [t for t in vocab.SECURITY_TYPES if t != "common stock"]
        security_type = rng.choice(extra_types)
        identifiers = make_security_identifiers(rng)
        entity_suffix = len(draft.securities)
        security = SecurityDraft(
            entity_id=f"{draft.entity_id}-SEC{entity_suffix}",
            name=f"{draft.seed.name} {security_type}",
            security_type=security_type,
            identifiers=identifiers,
            ticker=make_ticker(rng, draft.seed.name),
        )
        # The new security is listed in a subset of the company's sources.
        sources = draft.sources()
        listed = rng.sample(sources, rng.randint(1, len(sources)))
        for source in listed:
            security.records[source] = {
                "name": security.name,
                "security_type": security.security_type,
                "issuer_name": draft.company_records[source].get("name", draft.seed.name),
                "ticker": security.ticker,
                **identifiers,
            }
        draft.securities.append(security)
        draft.mark(self.name)


class CorruptIdentifier(DataArtifact):
    """Introduce a one-character typo into one identifier of one record."""

    name = "CorruptIdentifier"

    def apply(self, draft: CompanyGroupDraft, rng: random.Random) -> None:
        if not draft.securities:
            return
        security = rng.choice(draft.securities)
        sources = security.sources()
        if not sources:
            return
        source = rng.choice(sources)
        record = security.records[source]
        field_name = rng.choice(SECURITY_ID_FIELDS)
        value = record.get(field_name)
        if not value:
            return
        record[field_name] = corrupt_identifier(rng, str(value))
        draft.mark(self.name)


#: Default single-group artifacts with their per-group application
#: probabilities, calibrated (like the paper's) so that a good share of the
#: groups remains matchable by identifiers while a substantial minority needs
#: text alignment or transitive information.
DEFAULT_COMPANY_ARTIFACTS: tuple[tuple[DataArtifact, float], ...] = (
    (InsertCorporateTerm(), 0.45),
    (AcronymName(), 0.10),
    (ReorderNameTokens(), 0.10),
    (TypoName(), 0.15),
    (ParaphraseAttribute(), 0.30),
    (DropAttributes(), 0.35),
)

DEFAULT_SECURITY_ARTIFACTS: tuple[tuple[DataArtifact, float], ...] = (
    (MultipleSecurities(), 0.25),
    (MultipleIDs(), 0.15),
    (NoIdOverlaps(), 0.10),
    (CorruptIdentifier(), 0.08),
)
