"""A WDC-Products-style product-offer matching benchmark.

Section 5.1.4 evaluates the pipeline on the WDC Products benchmark (the
"large, 80% corner cases, 100% unseen test entities" variant).  The real
benchmark is built from web-scraped product offers; offline we generate an
equivalent synthetic task that preserves the properties the paper relies on:

* many data sources (web shops), heterogeneous group sizes,
* a high share of *corner cases*: offers of different products that share
  most of their title tokens (hard negatives), and offers of the same
  product with diverging titles (hard positives),
* entity groups of widely varying size — the situation in which the paper's
  own clean-up (tuned for "one record per source") is expected to underperform.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datagen.records import Dataset, ProductRecord

_BRANDS = (
    "Lexar", "SanDisk", "Kingston", "Corsair", "Samsung", "Seagate", "Intenso",
    "Transcend", "Crucial", "Western Digital", "PNY", "Toshiba", "Verbatim",
    "Logitech", "Belkin", "Anker", "TP-Link", "Netgear", "Asus", "MSI",
)
_PRODUCT_FAMILIES = (
    "USB Flash Drive", "MicroSD Card", "SD Card", "External SSD", "Internal SSD",
    "External Hard Drive", "Memory Module", "Wireless Mouse", "Mechanical Keyboard",
    "USB-C Hub", "Powerbank", "Wireless Router", "Graphics Card", "Webcam",
)
_CAPACITIES = ("16GB", "32GB", "64GB", "128GB", "256GB", "512GB", "1TB", "2TB")
_SPEED_CLASSES = ("Class 10", "UHS-I", "UHS-II", "V30", "Gen2", "3.1", "3.0", "2.0")
_NOISE_TOKENS = (
    "original", "retail", "blister", "bulk", "oem", "new", "sealed", "black",
    "silver", "portable", "high speed", "premium",
)
_CATEGORIES = ("Computers & Accessories", "Storage", "Networking", "Peripherals")


@dataclass
class WdcConfig:
    """Configuration of the synthetic WDC-Products-style benchmark."""

    num_entities: int = 500
    num_sources: int = 20
    min_offers_per_entity: int = 1
    max_offers_per_entity: int = 6
    corner_case_rate: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_entities < 1:
            raise ValueError("num_entities must be positive")
        if not 1 <= self.min_offers_per_entity <= self.max_offers_per_entity:
            raise ValueError("invalid offers-per-entity range")
        if not 0.0 <= self.corner_case_rate <= 1.0:
            raise ValueError("corner_case_rate must be in [0, 1]")


class WdcProductsGenerator:
    """Generates the synthetic product-offer matching dataset."""

    def __init__(self, config: WdcConfig | None = None) -> None:
        self.config = config or WdcConfig()

    def generate(self) -> Dataset:
        rng = random.Random(self.config.seed)
        records: list[ProductRecord] = []
        products = [self._make_product(rng, index) for index in range(self.config.num_entities)]

        # Corner cases are created by cloning an existing product with one
        # attribute changed (capacity or speed class): a different entity
        # whose offers look almost identical.
        num_corner = int(self.config.num_entities * self.config.corner_case_rate)
        for index in range(num_corner):
            base = rng.choice(products[: self.config.num_entities])
            products.append(self._make_corner_case(rng, base, self.config.num_entities + index))

        for product in products:
            records.extend(self._make_offers(rng, product))
        return Dataset("wdc-products", records)

    # -- product entities ---------------------------------------------------------

    def _make_product(self, rng: random.Random, index: int) -> dict[str, str]:
        return {
            "entity_id": f"WDC-P{index:05d}",
            "brand": rng.choice(_BRANDS),
            "family": rng.choice(_PRODUCT_FAMILIES),
            "capacity": rng.choice(_CAPACITIES),
            "speed": rng.choice(_SPEED_CLASSES),
            "model": f"{rng.choice('ABCDEFX')}{rng.randint(10, 999)}",
            "category": rng.choice(_CATEGORIES),
        }

    def _make_corner_case(
        self, rng: random.Random, base: dict[str, str], index: int
    ) -> dict[str, str]:
        variant = dict(base)
        variant["entity_id"] = f"WDC-P{index:05d}"
        changed_attribute = rng.choice(("capacity", "speed", "model"))
        if changed_attribute == "capacity":
            choices = [c for c in _CAPACITIES if c != base["capacity"]]
            variant["capacity"] = rng.choice(choices)
        elif changed_attribute == "speed":
            choices = [s for s in _SPEED_CLASSES if s != base["speed"]]
            variant["speed"] = rng.choice(choices)
        else:
            variant["model"] = f"{base['model']}{rng.choice('ABX')}"
        return variant

    # -- offers -----------------------------------------------------------------------

    def _make_offers(self, rng: random.Random, product: dict[str, str]) -> list[ProductRecord]:
        num_offers = rng.randint(
            self.config.min_offers_per_entity, self.config.max_offers_per_entity
        )
        sources = rng.sample(
            [f"shop{i + 1}" for i in range(self.config.num_sources)],
            min(num_offers, self.config.num_sources),
        )
        offers = []
        for offer_index, source in enumerate(sources):
            offers.append(
                ProductRecord(
                    record_id=f"{product['entity_id']}-O{offer_index}",
                    source=source,
                    entity_id=product["entity_id"],
                    title=self._make_title(rng, product),
                    brand=product["brand"] if rng.random() < 0.8 else None,
                    category=product["category"] if rng.random() < 0.6 else None,
                    price=f"{rng.uniform(5, 400):.2f}" if rng.random() < 0.7 else None,
                    description=self._make_description(rng, product),
                )
            )
        return offers

    def _make_title(self, rng: random.Random, product: dict[str, str]) -> str:
        tokens = [product["brand"], product["family"], product["capacity"]]
        if rng.random() < 0.7:
            tokens.append(product["speed"])
        if rng.random() < 0.6:
            tokens.append(product["model"])
        tokens.extend(rng.sample(_NOISE_TOKENS, rng.randint(0, 2)))
        rng.shuffle(tokens)
        return " ".join(tokens)

    def _make_description(self, rng: random.Random, product: dict[str, str]) -> str | None:
        if rng.random() < 0.4:
            return None
        return (
            f"{product['brand']} {product['family'].lower()} {product['capacity']} "
            f"{product['speed']} model {product['model']}"
        )


def generate_wdc_products(config: WdcConfig | None = None) -> Dataset:
    """Convenience wrapper: generate the synthetic WDC-Products dataset."""
    return WdcProductsGenerator(config).generate()
