"""Financial identifier standards: generation and validation.

Securities records carry identifiers from several (inter)national standards
(Section 3.1, footnote 4).  The ID Overlap blocking and several data
artifacts manipulate them, so we implement the real formats including their
check-digit algorithms:

* **ISIN** — 2-letter country code + 9 alphanumeric characters + 1 check
  digit computed with the "double-add-double" Luhn variant over the digitised
  string.
* **CUSIP** — 8 alphanumeric characters + 1 check digit (modulus 10,
  alternating weights 1/2 on digitised characters).
* **SEDOL** — 6 alphanumeric characters (no vowels) + 1 weighted check digit
  (weights 1, 3, 1, 7, 3, 9).
* **VALOR** — Swiss numeric identifier, no check digit.
* **LEI** — 18 alphanumeric characters + 2 check digits validated with the
  ISO 7064 mod-97-10 scheme (as for IBANs).
* **Ticker** — exchange ticker symbols (no checksum).
"""

from __future__ import annotations

import random
import string
from collections.abc import Sequence

_ALPHANUM = string.digits + string.ascii_uppercase
_SEDOL_ALPHABET = "0123456789BCDFGHJKLMNPQRSTVWXYZ"  # no vowels by standard
_SEDOL_WEIGHTS = (1, 3, 1, 7, 3, 9, 1)

ISIN_COUNTRY_CODES: tuple[str, ...] = (
    "US", "GB", "DE", "FR", "CH", "JP", "CA", "AU", "NL", "SE", "ES", "IT",
)


def _char_value(character: str) -> int:
    """Map an alphanumeric character to its numeric value (A=10 … Z=35)."""
    if character.isdigit():
        return int(character)
    return ord(character.upper()) - ord("A") + 10


def _digitise(text: str) -> list[int]:
    """Expand alphanumeric text into the digit sequence used by ISIN/CUSIP."""
    digits: list[int] = []
    for character in text:
        value = _char_value(character)
        if value >= 10:
            digits.extend(divmod(value, 10))
        else:
            digits.append(value)
    return digits


# --------------------------------------------------------------------------
# ISIN
# --------------------------------------------------------------------------

def isin_check_digit(body: str) -> int:
    """Check digit for an 11-character ISIN body (country code + 9 chars)."""
    if len(body) != 11:
        raise ValueError("ISIN body must be 11 characters (2 country + 9 NSIN)")
    digits = _digitise(body)
    # Double every second digit starting from the rightmost.
    total = 0
    for position, digit in enumerate(reversed(digits)):
        if position % 2 == 0:
            doubled = digit * 2
            total += doubled - 9 if doubled > 9 else doubled
        else:
            total += digit
    return (10 - total % 10) % 10


def make_isin(rng: random.Random, country: str | None = None) -> str:
    """Generate a structurally valid ISIN."""
    country_code = country or rng.choice(ISIN_COUNTRY_CODES)
    nsin = "".join(rng.choice(_ALPHANUM) for _ in range(9))
    body = country_code + nsin
    return body + str(isin_check_digit(body))


def is_valid_isin(value: str | None) -> bool:
    """Validate length, character set, country code format and check digit."""
    if not value or len(value) != 12:
        return False
    country, nsin, check = value[:2], value[2:11], value[11]
    if not country.isalpha() or not country.isupper():
        return False
    if not all(ch in _ALPHANUM for ch in nsin):
        return False
    if not check.isdigit():
        return False
    return isin_check_digit(value[:11]) == int(check)


# --------------------------------------------------------------------------
# CUSIP
# --------------------------------------------------------------------------

def cusip_check_digit(body: str) -> int:
    """Check digit over the first 8 CUSIP characters."""
    if len(body) != 8:
        raise ValueError("CUSIP body must be 8 characters")
    total = 0
    for index, character in enumerate(body):
        value = _char_value(character)
        if index % 2 == 1:
            value *= 2
        total += value // 10 + value % 10
    return (10 - total % 10) % 10


def make_cusip(rng: random.Random) -> str:
    body = "".join(rng.choice(_ALPHANUM) for _ in range(8))
    return body + str(cusip_check_digit(body))


def is_valid_cusip(value: str | None) -> bool:
    if not value or len(value) != 9:
        return False
    body, check = value[:8], value[8]
    if not all(ch in _ALPHANUM for ch in body) or not check.isdigit():
        return False
    return cusip_check_digit(body) == int(check)


# --------------------------------------------------------------------------
# SEDOL
# --------------------------------------------------------------------------

def sedol_check_digit(body: str) -> int:
    """Weighted check digit over the first 6 SEDOL characters."""
    if len(body) != 6:
        raise ValueError("SEDOL body must be 6 characters")
    total = sum(
        _char_value(character) * weight
        for character, weight in zip(body, _SEDOL_WEIGHTS)
    )
    return (10 - total % 10) % 10


def make_sedol(rng: random.Random) -> str:
    body = "".join(rng.choice(_SEDOL_ALPHABET) for _ in range(6))
    return body + str(sedol_check_digit(body))


def is_valid_sedol(value: str | None) -> bool:
    if not value or len(value) != 7:
        return False
    body, check = value[:6], value[6]
    if not all(ch in _SEDOL_ALPHABET for ch in body) or not check.isdigit():
        return False
    return sedol_check_digit(body) == int(check)


# --------------------------------------------------------------------------
# VALOR / LEI / tickers
# --------------------------------------------------------------------------

def make_valor(rng: random.Random) -> str:
    """Swiss VALOR number: 6-9 digits, no check digit."""
    length = rng.randint(6, 9)
    first = rng.choice("123456789")
    rest = "".join(rng.choice(string.digits) for _ in range(length - 1))
    return first + rest


def is_valid_valor(value: str | None) -> bool:
    return bool(value) and value.isdigit() and 6 <= len(value) <= 9


def lei_check_digits(body: str) -> str:
    """ISO 7064 mod-97-10 check digits for an 18-character LEI body."""
    if len(body) != 18:
        raise ValueError("LEI body must be 18 characters")
    numeric = "".join(str(_char_value(ch)) for ch in body + "00")
    remainder = int(numeric) % 97
    return f"{98 - remainder:02d}"


def make_lei(rng: random.Random) -> str:
    # First 4 characters identify the issuing Local Operating Unit.
    lou = "".join(rng.choice(string.digits) for _ in range(4))
    middle = "".join(rng.choice(_ALPHANUM) for _ in range(14))
    body = lou + middle
    return body + lei_check_digits(body)


def is_valid_lei(value: str | None) -> bool:
    if not value or len(value) != 20:
        return False
    body, check = value[:18], value[18:]
    if not all(ch in _ALPHANUM for ch in body) or not check.isdigit():
        return False
    numeric = "".join(str(_char_value(ch)) for ch in value)
    return int(numeric) % 97 == 1


def make_ticker(rng: random.Random, name: str | None = None) -> str:
    """Generate a plausible exchange ticker, biased toward the company name."""
    if name:
        letters = [ch for ch in name.upper() if ch.isalpha()]
        if len(letters) >= 3:
            length = rng.randint(3, min(4, len(letters)))
            return "".join(letters[:length])
    length = rng.randint(3, 4)
    return "".join(rng.choice(string.ascii_uppercase) for _ in range(length))


# --------------------------------------------------------------------------
# Identifier bundles
# --------------------------------------------------------------------------

SECURITY_ID_FIELDS: tuple[str, ...] = ("isin", "cusip", "sedol", "valor")


def make_security_identifiers(rng: random.Random) -> dict[str, str]:
    """Generate a consistent bundle of identifiers for one security."""
    return {
        "isin": make_isin(rng),
        "cusip": make_cusip(rng),
        "sedol": make_sedol(rng),
        "valor": make_valor(rng),
    }


def validate_identifier(kind: str, value: str | None) -> bool:
    """Dispatch validation by identifier kind."""
    validators = {
        "isin": is_valid_isin,
        "cusip": is_valid_cusip,
        "sedol": is_valid_sedol,
        "valor": is_valid_valor,
        "lei": is_valid_lei,
    }
    if kind not in validators:
        raise ValueError(f"unknown identifier kind: {kind!r}")
    return validators[kind](value)


def corrupt_identifier(rng: random.Random, value: str) -> str:
    """Return a slightly corrupted copy of ``value`` (one character changed).

    Used by artifacts that simulate typos in manually curated identifiers;
    the result usually fails check-digit validation, which is realistic.
    """
    if not value:
        return value
    position = rng.randrange(len(value))
    current = value[position]
    alphabet = string.digits if current.isdigit() else _ALPHANUM
    replacement = rng.choice([ch for ch in alphabet if ch != current])
    return value[:position] + replacement + value[position + 1:]


def identifier_overlap(left: dict[str, str | None], right: dict[str, str | None],
                       fields: Sequence[str] = SECURITY_ID_FIELDS) -> set[str]:
    """Return the identifier fields on which two records agree (non-empty)."""
    overlap = set()
    for field in fields:
        left_value = left.get(field)
        if left_value and left_value == right.get(field):
            overlap.add(field)
    return overlap
