"""Mutable per-entity drafts that data artifacts operate on.

Dataset generation proceeds in three stages:

1. the seed corpus is expanded into one :class:`CompanyGroupDraft` per entity
   (per-source attribute dictionaries for the company plus one
   :class:`SecurityDraft` per issued security),
2. data artifacts mutate the drafts (possibly linking two drafts, for
   acquisition / merger events),
3. the generator freezes the drafts into immutable
   :class:`~repro.datagen.records.CompanyRecord` /
   :class:`~repro.datagen.records.SecurityRecord` objects with ground truth.

Keeping a mutable intermediate form makes the artifacts small and
composable — exactly how the paper describes them ("multiple data artifacts
are sequentially applied to each record group and thus their effects become
intertwined").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.datagen.seed import SeedCompany

AttributeDict = dict[str, Any]


@dataclass
class SecurityDraft:
    """A security entity plus its per-source record drafts."""

    entity_id: str
    name: str
    security_type: str
    #: Canonical identifier bundle (isin / cusip / sedol / valor).
    identifiers: dict[str, str]
    ticker: str
    #: Source name -> mutable attribute dictionary for that source's record.
    records: dict[str, AttributeDict] = field(default_factory=dict)

    def sources(self) -> list[str]:
        return sorted(self.records)


@dataclass
class CompanyGroupDraft:
    """A company entity, its per-source record drafts and its securities."""

    seed: SeedCompany
    #: Ground-truth entity id; acquisitions rewrite this to the acquirer's id.
    entity_id: str
    #: Source name -> mutable attribute dictionary for that source's record.
    company_records: dict[str, AttributeDict] = field(default_factory=dict)
    securities: list[SecurityDraft] = field(default_factory=list)
    #: Names of artifacts applied, for provenance / statistics.
    applied_artifacts: list[str] = field(default_factory=list)
    #: Set when the group is the acquiree of an acquisition event.
    acquired_by: str | None = None
    #: Set when the group took part in a merger event (not a match).
    merged_with: str | None = None

    def sources(self) -> list[str]:
        return sorted(self.company_records)

    def record_count(self) -> int:
        company = len(self.company_records)
        securities = sum(len(security.records) for security in self.securities)
        return company + securities

    def mark(self, artifact_name: str) -> None:
        self.applied_artifacts.append(artifact_name)
