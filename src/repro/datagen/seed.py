"""Procedural seed-company corpus (Crunchbase-export substitute).

The paper seeds its synthetic benchmark with the first 200K records of the
Crunchbase Basic Export (name, city, region, country_code,
short_description).  That export is licensed, so this module generates an
equivalent corpus procedurally from the word banks in
:mod:`repro.datagen.vocab`.  Names are built so that many companies share
industry / technology / geography tokens, which recreates the main source of
false-positive pressure the paper describes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Iterator

from repro.datagen import vocab


@dataclass(frozen=True)
class SeedCompany:
    """One seed entity before any data-artifact perturbation.

    Mirrors the attributes extracted from Crunchbase in Section 3.2 plus the
    industry sector, which the description templates reference.
    """

    entity_id: str
    name: str
    city: str
    region: str
    country_code: str
    description: str
    industry: str

    def as_attributes(self) -> dict[str, str]:
        return {
            "name": self.name,
            "city": self.city,
            "region": self.region,
            "country_code": self.country_code,
            "description": self.description,
            "industry": self.industry,
        }


def _make_name(rng: random.Random, used_names: set[str]) -> str:
    """Compose a company name; collisions are retried with more tokens."""
    for attempt in range(20):
        root = rng.choice(vocab.BRAND_ROOTS)
        style = rng.random()
        if style < 0.35:
            # Two brand roots fused ("CrowdStrike", "CloudStream").
            second = rng.choice(vocab.BRAND_ROOTS)
            base = f"{root}{second}" if rng.random() < 0.5 else f"{root} {second}"
        elif style < 0.80:
            # Brand root + industry term ("Acme Analytics").
            term = rng.choice(vocab.INDUSTRY_TERMS)
            base = f"{root} {term}"
        else:
            # Brand root + two industry terms ("Nova Data Systems").
            first = rng.choice(vocab.INDUSTRY_TERMS)
            second = rng.choice(vocab.INDUSTRY_TERMS)
            while second == first:
                second = rng.choice(vocab.INDUSTRY_TERMS)
            base = f"{root} {first} {second}"

        # A corporate suffix on roughly half the names.
        if rng.random() < 0.5:
            base = f"{base} {rng.choice(vocab.CORPORATE_SUFFIXES)}"

        if attempt >= 10:
            # Very unlucky: disambiguate explicitly rather than loop forever.
            base = f"{base} {rng.randint(2, 99)}"
        if base.lower() not in used_names:
            used_names.add(base.lower())
            return base
    raise RuntimeError("unable to generate a unique company name")


def _make_description(rng: random.Random, name: str, city: str, sector: str) -> str:
    template = rng.choice(vocab.DESCRIPTION_TEMPLATES)
    return template.format(
        name=name,
        city=city,
        sector=sector,
        offer=rng.choice(vocab.OFFERS),
        audience=rng.choice(vocab.AUDIENCES),
        adjective=rng.choice(vocab.ADJECTIVES),
        benefit=rng.choice(vocab.BENEFITS),
    )


def iter_seed_companies(
    num_companies: int,
    seed: int = 0,
    description_probability: float = 0.32,
) -> Iterator[SeedCompany]:
    """Yield ``num_companies`` seed companies deterministically.

    ``description_probability`` controls the share of companies with a text
    description (32% for the synthetic companies dataset in Table 1); the
    remaining companies get an empty description, which is an important
    missing-data challenge for text-alignment matching.
    """
    if num_companies < 0:
        raise ValueError("num_companies must be non-negative")
    if not 0.0 <= description_probability <= 1.0:
        raise ValueError("description_probability must be in [0, 1]")

    rng = random.Random(seed)
    used_names: set[str] = set()
    for index in range(num_companies):
        name = _make_name(rng, used_names)
        city, region, country = rng.choice(vocab.CITIES)
        sector = rng.choice(vocab.INDUSTRY_SECTORS)
        if rng.random() < description_probability:
            description = _make_description(rng, name, city, sector)
        else:
            description = ""
        yield SeedCompany(
            entity_id=f"E{index:06d}",
            name=name,
            city=city,
            region=region,
            country_code=country,
            description=description,
            industry=sector,
        )


def generate_seed_companies(
    num_companies: int,
    seed: int = 0,
    description_probability: float = 0.32,
) -> list[SeedCompany]:
    """Materialise the seed corpus as a list (see :func:`iter_seed_companies`)."""
    return list(
        iter_seed_companies(
            num_companies,
            seed=seed,
            description_probability=description_probability,
        )
    )
