"""Delta ingestion with a batch-equivalence guarantee.

:class:`IncrementalMatcher` absorbs new records into a persistent
:class:`~repro.incremental.state.MatchState` at a cost proportional to the
delta (for the expensive stages), while producing **exactly** the groups a
one-shot batch pipeline run over the full corpus would produce.  The
guarantee is structural, not statistical — every saving is a cache keyed on
the exact inputs of a deterministic function:

* **blocking** — each delta-capable part folds the new records into its
  shared index (contract: the result equals ``prepare(full)``) and names
  the pre-existing *dirty* records whose per-record candidate emission may
  have changed; only those and the new records are rescored, and the full
  candidate stream is re-assembled from per-record owned lists in exactly
  the batch engine's parts-major / record-order / global-dedupe order.
  (The token-overlap blocking's global IDF honestly dirties every
  tokenised record — candidate *generation* is corpus-proportional for it,
  but it is the cheap index-based stage; identifier- and issuer-based
  parts dirty only true neighbours.)
* **matching** — decisions are pair-local, so the decision cache is reused
  for every pair already scored; only pairs new to the candidate set go
  through the engine's (profiled, batched, pooled) inference path.
* **graphs** — pre-cleanup and component detection re-run in full (linear,
  cheap), then each connected component's clean-up is memoised by its
  frozen edge set: untouched components splice through without a single
  graph-algorithm call, and only *dirty* components (any edge added,
  vanished, or re-tagged) are re-cleaned.  Component locality of the
  clean-up strategies makes this exactly equal to a global clean-up (see
  ``component_local`` in :mod:`repro.core.cleanup`).

One caveat is inherited from the engine's determinism notes: incremental
ingestion scores a pair in a different numeric batch shape than the batch
run does.  For the built-in matchers the per-pair arithmetic is row-local
(element-wise scaling + a per-row dot product), so probabilities are
bitwise identical anyway — the golden incremental suite pins this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Sequence
from typing import Any

from repro.blocking.base import Blocking, CandidatePair, dedupe_pairs
from repro.core.cleanup import CleanupConfig, CleanupReport
from repro.core.groups import EntityGroups
from repro.core.precleanup import PreCleanupConfig
from repro.core.stages import apply_pre_cleanup, groups_from_components
from repro.datagen.records import Dataset, Record
from repro.graphs.graph import Edge, sorted_edges
from repro.graphs.union_find import DisjointSet
from repro.incremental.state import ComponentCleanup, MatchState
from repro.matching.base import PairwiseMatcher
from repro.registry import CLEANUPS
from repro.runtime import PipelineRuntime, RuntimeConfig, StageProfiler


@dataclass
class IngestReport:
    """What one :meth:`IncrementalMatcher.ingest` call did (and reused)."""

    #: Records added by this ingest / total corpus size afterwards.
    num_new_records: int = 0
    num_records: int = 0
    #: Current candidate set size (after re-assembly + global dedupe).
    num_candidates: int = 0
    #: Pairs actually scored this ingest vs. served from the decision cache.
    pairs_scored: int = 0
    pairs_reused: int = 0
    #: Per-record blocking rescores summed over parts (new + dirty records).
    records_rescored: int = 0
    #: Positive edges after matching / kept after pre-cleanup.
    num_positive: int = 0
    num_kept: int = 0
    #: Connected components of the kept graph, and how their clean-up ran.
    components_total: int = 0
    components_recleaned: int = 0
    components_reused: int = 0
    #: Whether the kept-edge union-find had to be rebuilt (an edge vanished)
    #: instead of being extended in place.
    dsu_rebuilt: bool = False
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def delta_proportional(self) -> bool:
        """Convenience: did the expensive stages stay on the delta path?"""
        return not self.dsu_rebuilt and self.components_reused > 0


def _component_cleanup(
    cleanup_fn, edges: list[Edge], config: CleanupConfig
) -> tuple[list[set[str]], CleanupReport]:
    """Run one component's clean-up.

    Module-level on purpose: the golden suite monkeypatches this to count
    clean-up invocations and prove that untouched components are skipped.
    """
    return cleanup_fn(edges, config)


class IncrementalMatcher:
    """Ingests record deltas into a persistent, queryable match state."""

    def __init__(
        self,
        state: MatchState,
        runtime: PipelineRuntime | RuntimeConfig | None = None,
    ) -> None:
        self.state = state
        if runtime is None:
            runtime = PipelineRuntime(state.runtime_config)
        elif isinstance(runtime, RuntimeConfig):
            runtime = PipelineRuntime(runtime)
        self.runtime = runtime
        #: Directory this state was loaded from / last saved to (if any).
        self.state_dir: Path | None = None
        #: Set when an ingest died after it started mutating the state: the
        #: in-memory state may mix pre- and post-delta pieces and must not
        #: be ingested into or saved — reload from the last saved state.
        self._poisoned: str | None = None
        self._parts = state.parts()
        if not state.part_states:
            state.part_states = [None] * len(self._parts)
            state.owned_pairs = [{} for _ in self._parts]
        self._dataset = state.dataset()
        self.last_report: IngestReport | None = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def create(
        cls,
        matcher: PairwiseMatcher,
        blocking: Blocking,
        *,
        cleanup_config: CleanupConfig | None = None,
        pre_cleanup_config: PreCleanupConfig | None = None,
        cleanup_strategy: str = "gralmatch",
        runtime: PipelineRuntime | RuntimeConfig | None = None,
        name: str = "incremental",
    ) -> "IncrementalMatcher":
        """A fresh, empty state around fitted/configured components."""
        runtime_config = RuntimeConfig()
        if isinstance(runtime, RuntimeConfig):
            runtime_config = runtime
        elif isinstance(runtime, PipelineRuntime):
            runtime_config = runtime.config
        state = MatchState(
            name=name,
            matcher=matcher,
            blocking=blocking,
            cleanup_config=cleanup_config or CleanupConfig(),
            pre_cleanup_config=pre_cleanup_config or PreCleanupConfig(),
            cleanup_strategy=cleanup_strategy,
            runtime_config=runtime_config,
        )
        return cls(state, runtime=runtime)

    @classmethod
    def from_pipeline(cls, pipeline, name: str = "incremental") -> "IncrementalMatcher":
        """Adopt the components of an assembled
        :class:`~repro.core.pipeline.EntityGroupMatchingPipeline`.

        Only the pipeline's *components* carry over (matcher, blocking,
        clean-up configs, strategy, runtime); custom stage lists do not —
        ingestion always computes the Figure 1 stage semantics.
        """
        return cls.create(
            matcher=pipeline.matcher,
            blocking=pipeline.blocking,
            cleanup_config=pipeline.cleanup_config,
            pre_cleanup_config=pipeline.pre_cleanup_config,
            cleanup_strategy=pipeline.cleanup_strategy,
            runtime=pipeline.runtime,
            name=name,
        )

    @classmethod
    def load(
        cls,
        state_dir: str | Path,
        runtime: PipelineRuntime | RuntimeConfig | None = None,
    ) -> "IncrementalMatcher":
        """Open a saved state directory; ``runtime`` overrides the stored
        engine settings (results are engine-independent)."""
        matcher = cls(MatchState.load(state_dir), runtime=runtime)
        matcher.state_dir = Path(state_dir)
        return matcher

    def save(self, state_dir: str | Path | None = None) -> Path:
        """Persist the state (defaults to where it was loaded from)."""
        self._check_poisoned()
        target = state_dir if state_dir is not None else self.state_dir
        if target is None:
            raise ValueError(
                "no state directory: pass state_dir (the state was never "
                "saved or loaded)"
            )
        self.state_dir = self.state.save(target)
        return self.state_dir

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the runtime's persistent worker pool.

        The warm pool (and the shipped profile store) stays live *between*
        :meth:`ingest` batches on purpose — that is the whole point of the
        warm pool — so call this when done ingesting, or use the matcher as
        a context manager.  The matcher stays usable afterwards; the next
        parallel ingest respawns the pool.
        """
        self.runtime.close()

    def __enter__(self) -> "IncrementalMatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- results -------------------------------------------------------------

    @property
    def groups(self) -> EntityGroups:
        """The current entity groups (empty before the first ingest)."""
        if self.state.groups is None:
            return EntityGroups([])
        return self.state.groups

    @property
    def dataset(self) -> Dataset:
        return self._dataset

    def candidates(self) -> list[CandidatePair]:
        """The current candidate set, in exact batch-engine order."""
        return self._assemble_candidates()

    def decisions(self):
        """All current decisions, in candidate order (batch-identical).

        Returns a lazy :class:`~repro.matching.decisions.DecisionVector`
        gathered from the array-backed cache — element-wise equal to the
        batch pipeline's decision list.
        """
        return self.state.decisions.vector(
            [candidate.key for candidate in self._assemble_candidates()]
        )

    # -- ingestion -----------------------------------------------------------

    def ingest(self, new_records: Iterable[Record]) -> IngestReport:
        """Absorb ``new_records`` and bring the groups up to date.

        Equivalence contract (pinned by ``tests/incremental/``): after
        ingesting batches B1..Bn in order, the state's candidates,
        decisions, and final groups are byte-identical to one
        :class:`~repro.core.pipeline.EntityGroupMatchingPipeline` run over
        the concatenated dataset B1+..+Bn.

        Not exception-safe by design: the state mutates in stages, so an
        ingest that dies midway (worker pool failure, interrupt) leaves the
        in-memory state inconsistent — it is *poisoned* and every further
        :meth:`ingest`/:meth:`save` raises, directing the caller to reload
        from the last on-disk save (which the failed ingest never touched).
        Validation failures (duplicate ids) happen before any mutation and
        do not poison.
        """
        self._check_poisoned()
        profiler = self.runtime.profiler()
        report = IngestReport()
        batch = list(new_records)
        self._validate_new(batch)
        try:
            with profiler.recorder.span(
                "ingest", kind="run", new_records=len(batch)
            ) as span:
                result = self._ingest(batch, profiler, report)
                if span is not None:
                    span.attributes.update(
                        records_rescored=result.records_rescored,
                        pairs_scored=result.pairs_scored,
                        pairs_reused=result.pairs_reused,
                        components_recleaned=result.components_recleaned,
                        components_reused=result.components_reused,
                    )
                return result
        except Exception as error:
            self._poisoned = f"ingest failed mid-update: {error!r}"
            raise

    def _ingest(
        self, batch: list[Record], profiler: StageProfiler, report: IngestReport
    ) -> IngestReport:
        state = self.state
        for record in batch:
            self._dataset.add_record(record)
        state.records.extend(batch)
        report.num_new_records = len(batch)
        report.num_records = len(state.records)

        with profiler.stage("blocking"):
            candidates = self._update_candidates(batch, profiler, report)
        state.num_candidates = len(candidates)
        report.num_candidates = len(candidates)

        with profiler.stage("pairwise_matching"):
            decisions = self._update_decisions(candidates, profiler, report)

        with profiler.stage("pre_cleanup"):
            # The exact batch-stage computation, shared with
            # PreCleanupStage so the two execution modes cannot drift.
            positive_edges, _, kept, removed = apply_pre_cleanup(
                decisions, candidates, state.pre_cleanup_config
            )
            state.pre_cleanup_removed = removed
        report.num_positive = len(positive_edges)
        report.num_kept = len(kept)

        with profiler.stage("graph_cleanup"):
            final_components, cleanup_report = self._cleanup(kept, report)
            state.cleanup_report = cleanup_report

        with profiler.stage("grouping"):
            all_record_ids = [record.record_id for record in state.records]
            state.groups, state.pre_cleanup_groups = groups_from_components(
                final_components, all_record_ids, positive_edges
            )

        state.num_ingests += 1
        report.timings = profiler.as_timings()
        recorder = profiler.recorder
        if recorder.enabled:
            # The ingest deltas, as whole-run counters: what this batch
            # added, what it rescored, and what the decision cache and
            # clean-up memo served without recomputation.
            metrics = recorder.metrics
            metrics.add("ingest.new_records", report.num_new_records)
            metrics.add("ingest.records_rescored", report.records_rescored)
            metrics.add("decision_cache.hits", report.pairs_reused)
            metrics.add("decision_cache.misses", report.pairs_scored)
            metrics.add("cleanup_memo.hits", report.components_reused)
            metrics.add("cleanup_memo.misses", report.components_recleaned)
            metrics.gauge("ingest.num_records", report.num_records)
            metrics.gauge("ingest.num_candidates", report.num_candidates)
        self.last_report = report
        return report

    # -- internals -----------------------------------------------------------

    def _check_poisoned(self) -> None:
        if self._poisoned is not None:
            raise RuntimeError(
                "this matcher's in-memory state is inconsistent (an ingest "
                f"died after it started mutating: {self._poisoned}); reload "
                "the last saved state with IncrementalMatcher.load()"
            )

    def _validate_new(self, batch: Sequence[Record]) -> None:
        seen: set[str] = set()
        clashes: list[str] = []
        for record in batch:
            record_id = record.record_id
            if record_id in seen or record_id in self._dataset:
                clashes.append(record_id)
            seen.add(record_id)
        if clashes:
            raise ValueError(
                f"cannot ingest duplicate record ids: {sorted(set(clashes))}"
            )

    def _update_candidates(
        self,
        batch: Sequence[Record],
        profiler: StageProfiler,
        report: IngestReport,
    ) -> list[CandidatePair]:
        """Delta-update every part's index, rescore dirty + new records, and
        re-assemble the candidate stream in batch order."""
        state = self.state
        dataset = self._dataset
        new_ids = [record.record_id for record in batch]
        for index, part in enumerate(self._parts):
            if not part.shardable:
                # Whole-part fallback: regenerate this part's (deduplicated)
                # stream.  Equivalent because one global dedupe absorbs the
                # per-part one (the PR 3 merge contract).
                state.whole_part_pairs[index] = tuple(
                    part.candidate_pairs(dataset)
                )
                continue
            shared = state.part_states[index]
            if shared is not None and not batch:
                continue  # empty delta: this part's state cannot change
            if shared is not None and part.delta_capable:
                delta = part.delta_update(shared, dataset, batch)
                shared = delta.shared
                rescore_ids = set(delta.dirty_record_ids)
                rescore_ids.update(new_ids)
            else:
                # First ingest, a non-delta-capable part, or an empty batch:
                # (re)prepare globally and rescore everything.
                shared = part.prepare(dataset)
                rescore_ids = {record.record_id for record in dataset}
            state.part_states[index] = shared
            rescore_records = [
                record
                for record in state.records
                if record.record_id in rescore_ids
            ]
            owned_lists = self.runtime.run_blocking_delta(
                part, shared, rescore_records, profiler
            )
            owned = state.owned_pairs[index]
            for record, pairs in zip(rescore_records, owned_lists):
                owned[record.record_id] = pairs
            report.records_rescored += len(rescore_records)
        return self._assemble_candidates()

    def _assemble_candidates(self) -> list[CandidatePair]:
        """Concatenate the stored per-record owned lists into the candidate
        stream — parts-major, dataset order within each part, one global
        first-wins dedupe — exactly the batch engine's merge."""
        state = self.state
        merged: list[CandidatePair] = []
        for index, part in enumerate(self._parts):
            if not part.shardable:
                merged.extend(state.whole_part_pairs.get(index, ()))
                continue
            owned = state.owned_pairs[index]
            for record in state.records:
                merged.extend(owned.get(record.record_id, ()))
        return dedupe_pairs(merged)

    def _update_decisions(
        self,
        candidates: Sequence[CandidatePair],
        profiler: StageProfiler,
        report: IngestReport,
    ):
        """Score only candidates without a cached decision; return the full
        decisions in candidate order (a gathered
        :class:`~repro.matching.decisions.DecisionVector`)."""
        state = self.state
        cache = state.decisions
        keys = [candidate.key for candidate in candidates]
        new_keys: list[tuple[str, str]] = []
        new_pairs: list[CandidatePair] = []
        for candidate, key in zip(candidates, keys):
            if key not in cache:
                new_keys.append(key)
                new_pairs.append(candidate)
        report.pairs_scored = len(new_pairs)
        report.pairs_reused = len(candidates) - len(new_pairs)
        if new_pairs:
            profiles = self._extend_profiles(new_pairs)
            scored = self.runtime.run_matching(
                state.matcher,
                self._dataset,
                new_pairs,
                profiler,
                profiles=profiles,
                # The engine's id-pair payloads are exactly the candidates'
                # (left, right) ids — hand them over so it skips rebuilding
                # them from the CandidatePair objects.
                id_pairs=[
                    (candidate.left_id, candidate.right_id)
                    for candidate in new_pairs
                ],
            )
            # Columnar route: the scored DecisionVector's arrays are adopted
            # directly — no decision objects are built on either side.
            cache.extend(new_keys, scored)
        return cache.vector(keys)

    def _extend_profiles(self, new_pairs: Sequence[CandidatePair]):
        """Grow the persistent profile store to cover the pairs to score.

        Returns the store to pass to the engine, or ``None`` when the
        matcher runs unprofiled (the engine then resolves record pairs
        directly).  Stores that cannot append (no ``add_records``) are not
        persisted — the engine prepares a fresh per-call store instead.
        """
        state = self.state
        if not (
            self.runtime.config.profile_cache and state.matcher.profile_capable
        ):
            return None
        referenced: dict[str, None] = {}
        for candidate in new_pairs:
            referenced.setdefault(candidate.left_id)
            referenced.setdefault(candidate.right_id)
        needed = [self._dataset.record(record_id) for record_id in referenced]
        if state.profiles is None:
            prepared = state.matcher.prepare_profiles(needed)
            if hasattr(prepared, "add_records"):
                state.profiles = prepared
            return prepared
        state.profiles.add_records(needed)
        return state.profiles

    def _kept_components(
        self, kept: Sequence[Edge], report: IngestReport
    ) -> tuple[DisjointSet, list[set[str]]]:
        """Connected components of the kept graph, via the growable DSU.

        Fast path: when this ingest only *added* kept edges (the common
        case), the persistent union-find is extended in place —
        O(delta α).  When any previously kept edge vanished (a candidate
        fell out of top-n, a decision left the kept set through the
        pre-cleanup size rule), components may split, which union-find
        cannot express — rebuild from scratch.  Either way the memoised
        per-component clean-up keys keep the result exact.
        """
        state = self.state
        new_kept = set(kept)
        vanished = state.kept_edges - new_kept
        if state.kept_dsu is None or vanished:
            dsu = DisjointSet()
            for u, v in kept:
                dsu.union(u, v)
            report.dsu_rebuilt = state.kept_dsu is not None
        else:
            dsu = state.kept_dsu
            for u, v in kept:
                if (u, v) not in state.kept_edges:
                    dsu.union(u, v)
        state.kept_dsu = dsu
        state.kept_edges = new_kept
        return dsu, dsu.components()

    def _cleanup(
        self, kept: Sequence[Edge], report: IngestReport
    ) -> tuple[list[set[str]], CleanupReport]:
        """Clean the kept graph, re-running only dirty components.

        Returns the final components in exactly the order a global
        clean-up + ``connected_components`` pass produces (decreasing size,
        then smallest member repr) so grouping is byte-identical.
        """
        state = self.state
        cleanup_fn = CLEANUPS.get(state.cleanup_strategy)
        aggregate = CleanupReport()
        if not kept:
            state.cleanup_memo = {}
            state.kept_edges = set()
            state.kept_dsu = DisjointSet()
            return [], aggregate

        dsu, components = self._kept_components(kept, report)
        report.components_total = len(components)
        aggregate.initial_largest_component = len(components[0])

        if not getattr(cleanup_fn, "component_local", False):
            # Unknown strategy: no locality guarantee, no memo — re-clean
            # the whole graph (correct, just not delta-proportional).
            state.cleanup_memo = {}
            final_components, aggregate = cleanup_fn(
                list(kept), state.cleanup_config
            )
            report.components_recleaned = len(components)
            return final_components, aggregate

        edges_by_root: dict[Any, list[Edge]] = {}
        for edge in kept:
            edges_by_root.setdefault(dsu.find(edge[0]), []).append(edge)

        memo = state.cleanup_memo
        next_memo: dict[frozenset, ComponentCleanup] = {}
        final_components: list[frozenset[str]] = []
        for component in components:
            root = dsu.find(next(iter(component)))
            component_edges = edges_by_root.get(root, [])
            key = frozenset(component_edges)
            cached = memo.get(key)
            if cached is None:
                subcomponents, sub_report = _component_cleanup(
                    cleanup_fn, sorted_edges(component_edges), state.cleanup_config
                )
                cached = ComponentCleanup(
                    subcomponents=tuple(
                        frozenset(sub) for sub in subcomponents
                    ),
                    removed_edges=frozenset(sub_report.removed_edges),
                    mincut_removals=sub_report.mincut_removals,
                    betweenness_removals=sub_report.betweenness_removals,
                )
                report.components_recleaned += 1
            else:
                report.components_reused += 1
            next_memo[key] = cached
            final_components.extend(cached.subcomponents)
            aggregate.removed_edges.update(cached.removed_edges)
            aggregate.mincut_removals += cached.mincut_removals
            aggregate.betweenness_removals += cached.betweenness_removals
        state.cleanup_memo = next_memo

        # Global ordering: exactly connected_components' comparator, so the
        # spliced output is indistinguishable from a full-graph clean-up.
        final_sets = [set(sub) for sub in final_components]
        final_sets.sort(key=lambda comp: (-len(comp), min(repr(n) for n in comp)))
        aggregate.final_largest_component = (
            len(final_sets[0]) if final_sets else 0
        )
        return final_sets, aggregate
