"""The persistent match state: everything one matching task has learned.

A :class:`MatchState` co-models the database side of an incremental entity
group matching: the record corpus in ingestion order, the pipeline
components the state was created with (matcher, blocking recipe, clean-up
thresholds), every per-blocking shared index from the shardable ``prepare``
protocol, the per-record owned candidate lists, the appendable
:class:`~repro.matching.profiles.ProfileStore`, every pairwise decision
ever scored, and the graph-side bookkeeping (kept-edge union-find,
per-component clean-up memo, current groups).

On disk a state is a *directory*: a ``manifest.json`` carrying the format
name + version and summary counters, plus one pickle per concern inside a
*versioned payload subdirectory* the manifest points at.  Saves are
transactional: a new payload directory is fully written first, then the
manifest is atomically renamed into place (the single commit point), then
superseded payload directories are removed — a crash at any instant leaves
the manifest pointing at one complete, consistent payload set.  Loading
verifies the format version and raises :class:`MatchStateError` with the
offending path on any mismatch.
"""

from __future__ import annotations

import json
import pickle
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.blocking.base import Blocking, CandidatePair
from repro.core.cleanup import CleanupConfig, CleanupReport
from repro.core.groups import EntityGroups
from repro.core.precleanup import PreCleanupConfig
from repro.datagen.records import Dataset, Record
from repro.graphs.graph import Edge
from repro.graphs.union_find import DisjointSet
from repro.matching.base import PairwiseMatcher
from repro.matching.decisions import DecisionCache
from repro.runtime import RuntimeConfig

#: Format marker written to (and demanded from) every state manifest.
STATE_FORMAT = "repro-match-state"
#: Bump when the on-disk layout changes incompatibly.  Version 2 stores the
#: decision cache as an array-backed :class:`DecisionCache` instead of a
#: per-pair dict of :class:`~repro.matching.base.MatchDecision` objects.
STATE_FORMAT_VERSION = 2
#: Versions :meth:`MatchState.load` accepts; older ones are migrated in
#: memory on load (the next save writes the current format).
SUPPORTED_STATE_VERSIONS = (1, STATE_FORMAT_VERSION)

#: Manifest file name; its presence marks a completely written state.
MANIFEST_FILE = "manifest.json"

#: Payload subdirectories are named ``rev<N>``; the manifest's
#: ``payload_dir`` names the committed one.
_PAYLOAD_DIR_PREFIX = "rev"

#: Pickle payloads, one per concern, keyed by file name.  Splitting keeps a
#: reload of (say) just the records cheap and the write sizes inspectable.
_COMPONENTS_FILE = "components.pkl"
_RECORDS_FILE = "records.pkl"
_BLOCKING_FILE = "blocking_state.pkl"
_MATCHING_FILE = "matching_state.pkl"
_GRAPH_FILE = "graph_state.pkl"

_STATE_FILES = (
    _COMPONENTS_FILE,
    _RECORDS_FILE,
    _BLOCKING_FILE,
    _MATCHING_FILE,
    _GRAPH_FILE,
)


class MatchStateError(RuntimeError):
    """A state directory is missing, incomplete, or of the wrong format."""


@dataclass(frozen=True)
class ComponentCleanup:
    """Memoised clean-up of one connected component.

    Keyed by the component's exact (frozen) edge set: any change to the
    component — a new edge, a vanished candidate, a flipped pre-cleanup
    verdict — changes the key and forces a re-clean, which is what makes
    memo reuse provably equivalent to a full re-run.
    """

    subcomponents: tuple[frozenset[str], ...]
    removed_edges: frozenset[Edge]
    mincut_removals: int
    betweenness_removals: int


@dataclass
class MatchState:
    """In-memory form of one persistent matching task."""

    name: str

    # -- fixed components (chosen at creation, immutable afterwards) --------
    matcher: PairwiseMatcher
    blocking: Blocking
    cleanup_config: CleanupConfig
    pre_cleanup_config: PreCleanupConfig
    cleanup_strategy: str = "gralmatch"
    #: Default execution-engine settings; an override may be passed when the
    #: state is opened (the engine never changes results, only speed).
    runtime_config: RuntimeConfig = field(default_factory=RuntimeConfig)

    # -- corpus -------------------------------------------------------------
    #: All ingested records, in ingestion order (== batch dataset order).
    records: list[Record] = field(default_factory=list)

    # -- blocking state ------------------------------------------------------
    #: Per partitioned part: the shardable shared index (None before the
    #: first ingest, and always None for non-shardable parts).
    part_states: list[Any] = field(default_factory=list)
    #: Per part: record id -> that record's owned candidate pairs.  The
    #: part's full emission stream is the dataset-order concatenation.
    owned_pairs: list[dict[str, tuple[CandidatePair, ...]]] = field(
        default_factory=list
    )
    #: Non-shardable parts fall back to whole-part regeneration per ingest.
    whole_part_pairs: dict[int, tuple[CandidatePair, ...]] = field(
        default_factory=dict
    )

    # -- matching state ------------------------------------------------------
    #: Appendable profile store (None when the matcher runs unprofiled).
    profiles: Any = None
    #: Every decision ever scored, keyed by canonical pair but stored as
    #: parallel arrays (:class:`~repro.matching.decisions.DecisionCache`).
    #: Decisions are pair-local and deterministic, so their rows are reused
    #: verbatim whenever a pair reappears in the candidate set.
    decisions: DecisionCache = field(default_factory=DecisionCache)

    # -- graph state ---------------------------------------------------------
    #: Kept (post-pre-cleanup) edges of the latest ingest.
    kept_edges: set[Edge] = field(default_factory=set)
    #: Growable union-find over the kept edges; rebuilt only when an ingest
    #: removes edges (see IncrementalMatcher._kept_components).
    kept_dsu: DisjointSet | None = None
    #: Per-component clean-up memo of the latest ingest (pruned each ingest
    #: to the components that still exist).
    cleanup_memo: dict[frozenset, ComponentCleanup] = field(default_factory=dict)

    # -- latest results ------------------------------------------------------
    groups: EntityGroups | None = None
    pre_cleanup_groups: EntityGroups | None = None
    cleanup_report: CleanupReport = field(default_factory=CleanupReport)
    pre_cleanup_removed: set[Edge] = field(default_factory=set)
    num_candidates: int = 0
    num_ingests: int = 0
    #: Monotonic save counter; names the payload directory of the next save.
    payload_rev: int = 0

    # -- derived -------------------------------------------------------------

    def dataset(self) -> Dataset:
        """The corpus as a :class:`Dataset` (records in ingestion order)."""
        return Dataset(self.name, self.records)

    def parts(self) -> list[Blocking]:
        """The blocking's partitioned parts (stable across save/load:
        partitioning is structural, derived from the pickled blocking)."""
        return self.blocking.partition()

    # -- persistence ---------------------------------------------------------

    def manifest(self) -> dict[str, Any]:
        """The summary the manifest file carries (also what ``repro state
        show`` prints)."""
        return {
            "format": STATE_FORMAT,
            "format_version": STATE_FORMAT_VERSION,
            "name": self.name,
            "num_records": len(self.records),
            "num_ingests": self.num_ingests,
            "num_candidates": self.num_candidates,
            "num_decisions": len(self.decisions),
            "num_groups": len(self.groups) if self.groups is not None else 0,
            "cleanup_strategy": self.cleanup_strategy,
            "blocking_parts": [part.name for part in self.parts()],
            "matcher_type": type(self.matcher).__name__,
            "payload_dir": f"{_PAYLOAD_DIR_PREFIX}{self.payload_rev}",
            "files": list(_STATE_FILES),
        }

    def save(self, state_dir: str | Path) -> Path:
        """Serialise into ``state_dir`` (created if needed); returns the dir.

        Transactional: the payloads are fully written into a fresh
        ``rev<N>`` subdirectory, then the manifest — which names that
        subdirectory — is atomically renamed into place, then superseded
        ``rev*`` directories are removed.  The manifest rename is the
        single commit point: a crash at any instant leaves the manifest
        pointing at one complete payload set (the previous save's or this
        one's), never a mix; leftover uncommitted directories are swept by
        the next successful save.
        """
        state_dir = Path(state_dir)
        state_dir.mkdir(parents=True, exist_ok=True)
        self.payload_rev += 1
        payloads: dict[str, Any] = {
            _COMPONENTS_FILE: {
                "matcher": self.matcher,
                "blocking": self.blocking,
                "cleanup_config": self.cleanup_config,
                "pre_cleanup_config": self.pre_cleanup_config,
                "cleanup_strategy": self.cleanup_strategy,
                "runtime_config": self.runtime_config,
            },
            _RECORDS_FILE: {"name": self.name, "records": self.records},
            _BLOCKING_FILE: {
                "part_states": self.part_states,
                "owned_pairs": self.owned_pairs,
                "whole_part_pairs": self.whole_part_pairs,
            },
            _MATCHING_FILE: {
                # ProfileStore.__getstate__ drops its transient similarity
                # memo caches here, exactly like the worker-shipping path.
                "profiles": self.profiles,
                "decisions": self.decisions,
            },
            _GRAPH_FILE: {
                "kept_edges": self.kept_edges,
                "kept_dsu": self.kept_dsu,
                "cleanup_memo": self.cleanup_memo,
                "groups": self.groups,
                "pre_cleanup_groups": self.pre_cleanup_groups,
                "cleanup_report": self.cleanup_report,
                "pre_cleanup_removed": self.pre_cleanup_removed,
                "num_candidates": self.num_candidates,
                "num_ingests": self.num_ingests,
                "payload_rev": self.payload_rev,
            },
        }
        payload_dir = state_dir / f"{_PAYLOAD_DIR_PREFIX}{self.payload_rev}"
        if payload_dir.exists():  # leftover from an interrupted save
            shutil.rmtree(payload_dir)
        payload_dir.mkdir()
        for file_name, payload in payloads.items():  # repro-lint: disable=unordered-iteration -- dict literal; fixed source order
            with (payload_dir / file_name).open("wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        manifest_temp = state_dir / (MANIFEST_FILE + ".tmp")
        manifest_temp.write_text(
            json.dumps(self.manifest(), indent=2) + "\n", encoding="utf-8"
        )
        # The commit point: after this single atomic rename the manifest
        # names the new payload directory; before it, the old manifest
        # still names the old (untouched) one.
        manifest_temp.replace(state_dir / MANIFEST_FILE)
        for stale in state_dir.glob(f"{_PAYLOAD_DIR_PREFIX}*"):
            if stale.is_dir() and stale != payload_dir:
                shutil.rmtree(stale, ignore_errors=True)
        return state_dir

    @classmethod
    def load(cls, state_dir: str | Path) -> "MatchState":
        """Deserialise a state directory written by :meth:`save`."""
        state_dir = Path(state_dir)
        manifest = read_manifest(state_dir)
        payload_dir = state_dir / str(manifest.get("payload_dir", ""))
        if not payload_dir.is_dir():
            raise MatchStateError(
                f"match state at {state_dir} is incomplete: missing payload "
                f"directory {manifest.get('payload_dir')!r}"
            )
        payloads: dict[str, Any] = {}
        for file_name in _STATE_FILES:
            path = payload_dir / file_name
            if not path.exists():
                raise MatchStateError(
                    f"match state at {state_dir} is incomplete: missing {file_name}"
                )
            with path.open("rb") as handle:
                payloads[file_name] = pickle.load(handle)
        components = payloads[_COMPONENTS_FILE]
        graph = payloads[_GRAPH_FILE]
        decisions = payloads[_MATCHING_FILE]["decisions"]
        if isinstance(decisions, dict):
            # Format v1 stored a per-pair dict of MatchDecision objects;
            # migrate to the array-backed cache (insertion order == scoring
            # order becomes row order, so gathers stay batch-identical).
            decisions = DecisionCache.from_decisions(decisions)
        state = cls(
            name=payloads[_RECORDS_FILE]["name"],
            matcher=components["matcher"],
            blocking=components["blocking"],
            cleanup_config=components["cleanup_config"],
            pre_cleanup_config=components["pre_cleanup_config"],
            cleanup_strategy=components["cleanup_strategy"],
            runtime_config=components["runtime_config"],
            records=payloads[_RECORDS_FILE]["records"],
            part_states=payloads[_BLOCKING_FILE]["part_states"],
            owned_pairs=payloads[_BLOCKING_FILE]["owned_pairs"],
            whole_part_pairs=payloads[_BLOCKING_FILE]["whole_part_pairs"],
            profiles=payloads[_MATCHING_FILE]["profiles"],
            decisions=decisions,
            kept_edges=graph["kept_edges"],
            kept_dsu=graph["kept_dsu"],
            cleanup_memo=graph["cleanup_memo"],
            groups=graph["groups"],
            pre_cleanup_groups=graph["pre_cleanup_groups"],
            cleanup_report=graph["cleanup_report"],
            pre_cleanup_removed=graph["pre_cleanup_removed"],
            num_candidates=graph["num_candidates"],
            num_ingests=graph["num_ingests"],
            payload_rev=graph["payload_rev"],
        )
        if manifest.get("num_records") != len(state.records):
            raise MatchStateError(
                f"match state at {state_dir} is inconsistent: manifest says "
                f"{manifest.get('num_records')} records, payload holds "
                f"{len(state.records)}"
            )
        return state


def is_state_dir(state_dir: str | Path) -> bool:
    """True when ``state_dir`` holds a completely written match state."""
    return (Path(state_dir) / MANIFEST_FILE).exists()


def read_manifest(state_dir: str | Path) -> dict[str, Any]:
    """Read and validate a state directory's manifest."""
    state_dir = Path(state_dir)
    manifest_path = state_dir / MANIFEST_FILE
    if not manifest_path.exists():
        raise MatchStateError(
            f"no match state at {state_dir}: missing {MANIFEST_FILE} "
            "(either the path is wrong or a save was interrupted)"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise MatchStateError(
            f"corrupt manifest at {manifest_path}: {error}"
        ) from error
    if manifest.get("format") != STATE_FORMAT:
        raise MatchStateError(
            f"{manifest_path} is not a {STATE_FORMAT} manifest "
            f"(format={manifest.get('format')!r})"
        )
    version = manifest.get("format_version")
    if version not in SUPPORTED_STATE_VERSIONS:
        raise MatchStateError(
            f"match state at {state_dir} has format version {version!r}; "
            f"this build reads versions {list(SUPPORTED_STATE_VERSIONS)}"
        )
    return manifest
