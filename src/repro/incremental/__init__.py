"""Incremental ingestion: persistent match state + delta matching.

The one-shot batch pipeline answers "what are the groups of this corpus?";
this subsystem answers it *continuously*: a versioned on-disk
:class:`MatchState` holds everything a matching task has learned, and an
:class:`IncrementalMatcher` folds newly arriving records in at a cost
proportional to the delta for the expensive stages — while guaranteeing the
resulting groups are byte-identical to a batch run over the full corpus
(any partition, any order; pinned by ``tests/incremental/``).

Entry points: :func:`repro.api.open_state` / :func:`repro.api.ingest`, the
CLI's ``repro ingest`` / ``repro state show``, or the classes directly.
"""

from repro.incremental.matcher import IncrementalMatcher, IngestReport
from repro.incremental.state import (
    STATE_FORMAT,
    STATE_FORMAT_VERSION,
    ComponentCleanup,
    MatchState,
    MatchStateError,
    is_state_dir,
    read_manifest,
)

__all__ = [
    "STATE_FORMAT",
    "STATE_FORMAT_VERSION",
    "ComponentCleanup",
    "IncrementalMatcher",
    "IngestReport",
    "MatchState",
    "MatchStateError",
    "is_state_dir",
    "read_manifest",
]
