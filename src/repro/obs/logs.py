"""Logging hygiene for the ``repro`` library.

The library logs under the ``"repro"`` namespace and, per stdlib
convention, never configures handlers on import — :mod:`repro`'s package
``__init__`` attaches a ``NullHandler`` to the root ``"repro"`` logger so
an un-configured embedder sees no "No handlers could be found" noise and
no surprise output.  Applications opt in: the CLI's ``--verbose/-v`` flag
calls :func:`configure_cli_logging`, which routes the namespace to stderr
(stdout is reserved for machine-readable command output).

Observability warnings (an unwritable ``--trace`` path, a failing sink)
go through these loggers instead of being swallowed — tracing must never
break a run, but it also must not fail silently.
"""

from __future__ import annotations

import logging
from typing import TextIO

__all__ = ["LIBRARY_LOGGER_NAME", "configure_cli_logging", "get_logger"]

#: Root of the library's logger namespace.
LIBRARY_LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """The library logger, or a dotted child of it.

    ``get_logger()`` returns the root ``"repro"`` logger;
    ``get_logger("obs.sinks")`` returns ``"repro.obs.sinks"``.
    """
    if not name:
        return logging.getLogger(LIBRARY_LOGGER_NAME)
    return logging.getLogger(f"{LIBRARY_LOGGER_NAME}.{name}")


def configure_cli_logging(verbosity: int, stream: TextIO | None = None) -> None:
    """Wire ``repro.*`` log records to ``stream`` (default stderr) for a CLI run.

    ``verbosity`` is the ``-v`` count: 0 shows warnings only, 1 (``-v``)
    adds INFO, 2+ (``-vv``) adds DEBUG.  Idempotent per process — rerunning
    (as CLI tests do in one interpreter) replaces the previous CLI handler
    rather than stacking duplicates.
    """
    level = logging.WARNING
    if verbosity == 1:
        level = logging.INFO
    elif verbosity >= 2:
        level = logging.DEBUG
    logger = get_logger()
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_cli_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler._repro_cli_handler = True  # type: ignore[attr-defined]
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    logger.addHandler(handler)
