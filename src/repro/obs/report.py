"""Human-readable trace reports: the ``repro report`` renderer.

Turns a :class:`~repro.obs.trace.Trace` into a terminal summary: the span
tree with per-span durations, chunk children collapsed into a per-stage
throughput line (count, items, items/s), instant events inline, then the
final counters with derived hit rates for every ``<family>.hits`` /
``<family>.misses`` counter pair (the naming convention from
:mod:`repro.obs.metrics` — new caches get a rate line for free).
"""

from __future__ import annotations

from typing import Any

from repro.obs.trace import Span, Trace

__all__ = ["render_trace_report"]


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def _format_attrs(attributes: dict[str, Any]) -> str:
    if not attributes:
        return ""
    parts = ", ".join(f"{key}={value}" for key, value in attributes.items())
    return f"  [{parts}]"


def _chunk_summary(chunks: list[Span]) -> str:
    items = sum(int(chunk.attributes.get("items", 0)) for chunk in chunks)
    busy = sum(chunk.duration for chunk in chunks)
    line = f"{len(chunks)} chunks"
    if items:
        line += f", {items} items"
        if busy > 0:
            line += f", {items / busy:,.0f} items/s"
    line += f", {_format_seconds(busy)} worker time"
    return line


def _render_span(span: Span, indent: int, lines: list[str]) -> None:
    pad = "  " * indent
    if span.kind == "event":
        lines.append(f"{pad}· {span.name}{_format_attrs(span.attributes)}")
        return
    lines.append(
        f"{pad}{span.name} [{span.kind}] "
        f"{_format_seconds(span.duration)}{_format_attrs(span.attributes)}"
    )
    chunks = [child for child in span.children if child.kind == "chunk"]
    if chunks:
        lines.append(f"{pad}  {_chunk_summary(chunks)}")
    for child in span.children:
        if child.kind != "chunk":
            _render_span(child, indent + 1, lines)


def _hit_rates(counters: dict[str, int]) -> list[tuple[str, int, int]]:
    """``(family, hits, misses)`` for every ``.hits``/``.misses`` pair."""
    rates = []
    for name, hits in counters.items():
        if not name.endswith(".hits"):
            continue
        family = name[: -len(".hits")]
        misses = counters.get(f"{family}.misses")
        if misses is None:
            continue
        rates.append((family, hits, misses))
    return rates


def render_trace_report(trace: Trace) -> str:
    """``trace`` as a multi-line terminal report (no trailing newline)."""
    lines: list[str] = []
    if trace.spans:
        lines.append("Trace")
        lines.append("=====")
        for span in trace.spans:
            _render_span(span, 0, lines)
    else:
        lines.append("Trace contains no spans.")
    rates = _hit_rates(trace.counters)
    if rates:
        lines.append("")
        lines.append("Cache hit rates")
        lines.append("---------------")
        for family, hits, misses in rates:
            total = hits + misses
            rate = (hits / total * 100.0) if total else 0.0
            lines.append(f"{family}: {hits}/{total} hits ({rate:.1f}%)")
    if trace.counters:
        lines.append("")
        lines.append("Counters")
        lines.append("--------")
        for name, value in trace.counters.items():
            lines.append(f"{name}: {value}")
    if trace.gauges:
        lines.append("")
        lines.append("Gauges")
        lines.append("------")
        for name, value in trace.gauges.items():
            lines.append(f"{name}: {value:g}")
    return "\n".join(lines)
