"""Run-level counters and gauges.

A :class:`Metrics` registry is the numeric half of the observability layer
(:mod:`repro.obs.trace` is the temporal half): named monotonic **counters**
(cache hits, payload publishes, pairs scored) and last-value **gauges**
(pool width, corpus size).  Producers call :meth:`Metrics.add` /
:meth:`Metrics.gauge` with dotted names; nothing is pre-registered, a first
touch creates the series.

Naming convention: dotted, ``<subsystem>.<series>``.  Counter *pairs* named
``<family>.hits`` / ``<family>.misses`` are understood by the report
renderer (:mod:`repro.obs.report`), which derives per-family hit rates —
new cache instrumentation gets rate reporting for free by following the
convention.

:data:`NULL_METRICS` is the disabled default: a shared, stateless no-op
whose methods return immediately, so instrumented code paths cost nothing
when no one is observing.  Instrumentation on hot paths must additionally
be *bulk*: one ``add(name, n)`` per batch with an already-computed count,
never one call per pair.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Metrics", "NullMetrics", "NULL_METRICS"]


class Metrics:
    """A registry of named counters (monotonic) and gauges (last value)."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}

    # -- recording -----------------------------------------------------------

    def add(self, name: str, value: int = 1) -> None:
        """Increment counter ``name`` by ``value`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + int(value)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = float(value)

    # -- reading -------------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never touched)."""
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, int]:
        """All counters, sorted by name (a copy)."""
        return dict(sorted(self._counters.items()))

    def gauges(self) -> dict[str, float]:
        """All gauges, sorted by name (a copy)."""
        return dict(sorted(self._gauges.items()))

    def snapshot(self) -> dict[str, Any]:
        """``{"counters": {...}, "gauges": {...}}``, both name-sorted."""
        return {"counters": self.counters(), "gauges": self.gauges()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Metrics(counters={len(self._counters)}, gauges={len(self._gauges)})"


class NullMetrics:
    """The disabled registry: every method is a constant-time no-op."""

    enabled = False

    def add(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def counter(self, name: str) -> int:
        return 0

    def counters(self) -> dict[str, int]:
        return {}

    def gauges(self) -> dict[str, float]:
        return {}

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullMetrics()"


#: The shared disabled registry — the default everywhere a ``Metrics`` is
#: accepted, so un-traced runs never allocate per-series state.
NULL_METRICS = NullMetrics()
