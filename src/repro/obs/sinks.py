"""Trace sinks: where completed spans stream while a run executes.

A sink is anything with ``write(record: dict)`` / ``close()``.  The
recorder (:mod:`repro.obs.trace`) emits flat records:

* a **span** record per completed span —
  ``{"type": "span", "id", "parent", "name", "kind", "start", "end",
  "attrs"?}`` where ``parent`` links the enclosing span's id (``null`` for
  roots) and ``attrs`` is present only when non-empty,
* one final **metrics** record from ``finish()`` —
  ``{"type": "metrics", "counters": {...}, "gauges": {...}}``.

Three sinks cover the built-in workflows: the recorder itself is the
in-memory sink (its tree is always kept), :class:`MemorySink` captures the
raw record stream for tests, and :class:`JsonlSink` streams records to a
file — one JSON object per line, headed by a version record, flushed per
line so a crashed run still leaves a readable prefix.  ``--trace out.jsonl``
on the CLI wires a :class:`JsonlSink` in; ``repro report`` reads the file
back with :func:`read_trace_jsonl`.

Failure contract: a sink must never break the run it observes.
:class:`JsonlSink` catches ``OSError`` on open/write, warns once through the
``repro`` logger, and disables itself — the run continues untraced.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, TextIO

from repro.obs.logs import get_logger
from repro.obs.trace import Span, Trace

__all__ = [
    "TRACE_FORMAT_VERSION",
    "JsonlSink",
    "MemorySink",
    "TraceFormatError",
    "read_trace_jsonl",
]

#: Version stamped into (and required of) a JSONL trace file's header line.
TRACE_FORMAT_VERSION = 1

_logger = get_logger("obs.sinks")


class MemorySink:
    """Collects the raw record stream in a list (for tests and tooling)."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []
        self.closed = False

    def write(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    def close(self) -> None:
        self.closed = True


class JsonlSink:
    """Streams trace records to ``path`` as JSON Lines.

    The file opens lazily on the first record (a traced run that records
    nothing leaves no file), starts with a header line::

        {"type": "trace", "version": 1}

    and is flushed after every record.  Unwritable paths degrade, never
    raise: the first ``OSError`` logs one warning and turns every later
    ``write`` into a no-op.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: TextIO | None = None
        self._broken = False

    def write(self, record: dict[str, Any]) -> None:
        if self._broken:
            return
        try:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("w", encoding="utf-8")
                self._write_line(
                    {"type": "trace", "version": TRACE_FORMAT_VERSION}
                )
            self._write_line(record)
        except OSError as error:
            self._broken = True
            self._handle = None
            _logger.warning(
                "trace sink disabled: cannot write %s (%s); the run "
                "continues untraced",
                self.path,
                error,
            )

    def _write_line(self, record: dict[str, Any]) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - close-time races only
                pass
            self._handle = None


class TraceFormatError(ValueError):
    """A trace JSONL file does not follow the record schema."""


def _expect(condition: bool, line_number: int, message: str) -> None:
    if not condition:
        raise TraceFormatError(f"line {line_number}: {message}")


def read_trace_jsonl(path: str | Path) -> Trace:
    """Parse a :class:`JsonlSink` file back into a :class:`Trace`.

    Validates the schema as it reads — header first, known record types,
    required span fields, parent links that resolve — then reconstructs the
    span tree exactly as the recorder held it.  Spans stream out on
    *completion*, so children appear before their parents; but the recorder
    is a single stack, so siblings close (and therefore emit) in attachment
    order, and linking each span to its parent in emission order rebuilds
    every ``children`` list exactly.  The result equals
    ``recorder.trace()`` for the same run (the round-trip suite pins this).
    Raises :class:`TraceFormatError` on any malformed line.
    """
    path = Path(path)
    spans_by_id: dict[int, Span] = {}
    #: ``(line_number, span_id, parent_id)`` in emission order.
    links: list[tuple[int, int, int | None]] = []
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceFormatError(
                    f"line {line_number}: not valid JSON ({error})"
                ) from None
            _expect(isinstance(record, dict), line_number, "expected a JSON object")
            kind = record.get("type")
            if line_number == 1:
                _expect(
                    kind == "trace",
                    line_number,
                    'expected the header {"type": "trace", ...} first',
                )
                _expect(
                    record.get("version") == TRACE_FORMAT_VERSION,
                    line_number,
                    f"unsupported trace version {record.get('version')!r} "
                    f"(expected {TRACE_FORMAT_VERSION})",
                )
                continue
            if kind == "span":
                span_id = record.get("id")
                _expect(
                    isinstance(span_id, int) and span_id not in spans_by_id,
                    line_number,
                    "span records need a unique integer id",
                )
                for key in ("name", "kind"):
                    _expect(
                        isinstance(record.get(key), str),
                        line_number,
                        f"span records need a string {key!r}",
                    )
                _expect(
                    isinstance(record.get("start"), (int, float))
                    and isinstance(record.get("end"), (int, float)),
                    line_number,
                    "span records need numeric start/end",
                )
                attrs = record.get("attrs", {})
                _expect(
                    isinstance(attrs, dict),
                    line_number,
                    "span attrs must be an object",
                )
                span = Span(
                    name=record["name"],
                    kind=record["kind"],
                    start=float(record["start"]),
                    end=float(record["end"]),
                    attributes=attrs,
                )
                spans_by_id[span_id] = span
                parent_id = record.get("parent")
                _expect(
                    parent_id is None or isinstance(parent_id, int),
                    line_number,
                    "span parent must be an integer id or null",
                )
                links.append((line_number, span_id, parent_id))
            elif kind == "metrics":
                raw_counters = record.get("counters", {})
                raw_gauges = record.get("gauges", {})
                _expect(
                    isinstance(raw_counters, dict) and isinstance(raw_gauges, dict),
                    line_number,
                    "metrics records need counters/gauges objects",
                )
                counters.update(raw_counters)
                gauges.update(raw_gauges)
            elif kind == "trace":
                raise TraceFormatError(
                    f"line {line_number}: duplicate trace header"
                )
            else:
                raise TraceFormatError(
                    f"line {line_number}: unknown record type {kind!r}"
                )
    roots: list[Span] = []
    for line_number, span_id, parent_id in links:
        if parent_id is None:
            roots.append(spans_by_id[span_id])
        else:
            _expect(
                parent_id in spans_by_id,
                line_number,
                f"span parent {parent_id!r} does not name a span in this trace",
            )
            spans_by_id[parent_id].children.append(spans_by_id[span_id])
    return Trace(spans=roots, counters=counters, gauges=gauges)
