"""Hierarchical run tracing: spans, the recorder, and its no-op twin.

A **span** is one timed region with structured attributes; spans nest into
the run hierarchy the engine produces::

    run                       one pipeline run / one ingest batch
    └── stage                 blocking, pairwise_matching, graph_cleanup, ...
        ├── chunk             one scheduler task (duration measured in-worker)
        └── event             an instant: pool spawn, epoch publish, ...

The :class:`TraceRecorder` is the single producer-facing object: code opens
spans with ``with recorder.span(...)``, drops instants with
:meth:`~TraceRecorder.event`, attaches already-timed regions (worker-measured
chunks) with :meth:`~TraceRecorder.add_span`, and counts through
``recorder.metrics``.  All recording happens parent-side on one thread — the
recorder is deliberately not thread-safe; worker-side measurements ride back
to the parent on the existing chunk-result channel and are attached here.

Completed spans stream to an optional **sink** (:mod:`repro.obs.sinks`) as
flat records carrying ``id``/``parent`` links; the in-memory tree is always
kept too, so :meth:`TraceRecorder.trace` and a parsed JSONL file reconstruct
the *same* :class:`Trace` (the round-trip suite pins this).

:data:`NULL_RECORDER` is the default everywhere a recorder is accepted: a
shared, stateless no-op with ``enabled = False``.  Hot paths guard their
instrumentation with ``if recorder.enabled:`` so the disabled engine stays
allocation-free — tracing on/off is byte-identical in outputs and ≤ a few
percent in time, and only ever *observes* a run, never steers it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Iterator
from typing import Any

from repro.obs import clock
from repro.obs.metrics import Metrics, NULL_METRICS

__all__ = ["Span", "Trace", "TraceRecorder", "NullRecorder", "NULL_RECORDER"]


@dataclass
class Span:
    """One timed region of the run hierarchy.

    ``start``/``end`` are seconds on the shared monotonic timeline
    (:func:`repro.obs.clock.now`); events are zero-length spans.  Equality
    is structural (name, kind, times, attributes, children) — what the
    JSONL round-trip suite compares.
    """

    name: str
    kind: str = "span"
    start: float = 0.0
    end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth-first in child order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, kind={self.kind!r}, "
            f"duration={self.duration:.6f}, children={len(self.children)})"
        )


@dataclass
class Trace:
    """A finished recording: root spans plus the final metric values.

    Produced by :meth:`TraceRecorder.trace` (in-memory) and by
    :func:`repro.obs.sinks.read_trace_jsonl` (from a streamed file); the two
    are equal for the same run.
    """

    spans: list[Span] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)

    def walk(self) -> Iterator[Span]:
        """Every span in the trace, depth-first, roots in order."""
        for span in self.spans:
            yield from span.walk()

    def find(self, name: str, kind: str | None = None) -> list[Span]:
        """All spans named ``name`` (optionally restricted to ``kind``)."""
        return [
            span
            for span in self.walk()
            if span.name == name and (kind is None or span.kind == kind)
        ]


class TraceRecorder:
    """Records the span tree of a run and streams completed spans to a sink.

    ``sink`` (optional) receives one flat dict per completed span — see
    :mod:`repro.obs.sinks` for the record schema — plus a final metrics
    record from :meth:`finish`.  Sink failures never propagate into the run
    (the sink degrades itself and warns through the ``repro`` logger);
    recording is an observer, not a participant.
    """

    enabled = True

    def __init__(self, sink: Any = None, metrics: Metrics | None = None) -> None:
        self.metrics = Metrics() if metrics is None else metrics
        self._sink = sink
        self._roots: list[Span] = []
        #: Open spans, innermost last; new spans/events attach to the top.
        self._stack: list[tuple[Span, int]] = []
        self._next_id = 1
        self._finished = False

    # -- recording -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, kind: str = "span", **attributes: Any) -> Iterator[Span]:
        """Open a span around a code region; closes (and emits) on exit.

        Attributes may also be added to the yielded span while it is open —
        they are emitted with the completed span.
        """
        span = Span(name=name, kind=kind, start=clock.now(), attributes=attributes)
        span_id = self._attach(span)
        self._stack.append((span, span_id))
        try:
            yield span
        finally:
            span.end = clock.now()
            self._stack.pop()
            self._emit(span, span_id)

    def event(self, name: str, **attributes: Any) -> Span:
        """Record an instantaneous event under the current open span."""
        moment = clock.now()
        span = Span(
            name=name, kind="event", start=moment, end=moment, attributes=attributes
        )
        self._emit(span, self._attach(span))
        return span

    def add_span(
        self,
        name: str,
        kind: str = "chunk",
        *,
        start: float,
        end: float,
        attributes: dict[str, Any] | None = None,
    ) -> Span:
        """Attach an already-timed region under the current open span.

        The attachment point for measurements taken elsewhere — chunk
        durations clocked inside pool workers ride back on the chunk-result
        channel and land here, in submission order, with their in-worker
        ``start``/``end`` (the clock is system-wide; see
        :mod:`repro.obs.clock`).
        """
        span = Span(
            name=name,
            kind=kind,
            start=start,
            end=end,
            attributes={} if attributes is None else dict(attributes),
        )
        self._emit(span, self._attach(span))
        return span

    def finish(self) -> None:
        """Emit the final metrics record and release the sink (idempotent).

        Called by the owning runtime's ``close()``; later recording still
        lands in the in-memory tree but is no longer streamed.
        """
        if self._finished:
            return
        self._finished = True
        if self._sink is not None:
            snapshot = self.metrics.snapshot()
            self._sink.write(
                {
                    "type": "metrics",
                    "counters": snapshot["counters"],
                    "gauges": snapshot["gauges"],
                }
            )
            self._sink.close()
            self._sink = None

    # -- reading -------------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """The root spans recorded so far (the live tree, not a copy)."""
        return self._roots

    def trace(self) -> Trace:
        """The finished recording as a :class:`Trace`."""
        snapshot = self.metrics.snapshot()
        return Trace(
            spans=self._roots,
            counters=snapshot["counters"],
            gauges=snapshot["gauges"],
        )

    # -- internals -----------------------------------------------------------

    def _attach(self, span: Span) -> int:
        if self._stack:
            self._stack[-1][0].children.append(span)
        else:
            self._roots.append(span)
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _emit(self, span: Span, span_id: int) -> None:
        if self._sink is None or self._finished:
            return
        record: dict[str, Any] = {
            "type": "span",
            "id": span_id,
            "parent": self._stack[-1][1] if self._stack else None,
            "name": span.name,
            "kind": span.kind,
            "start": span.start,
            "end": span.end,
        }
        if span.attributes:
            record["attrs"] = span.attributes
        self._sink.write(record)


class _NullContext:
    """A reusable no-op context manager (one shared instance, no per-call
    allocation)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullRecorder:
    """The disabled recorder: every method returns immediately.

    Shared as :data:`NULL_RECORDER`.  Call sites on per-chunk (or hotter)
    paths should gate on :attr:`enabled` before building attribute payloads,
    so the disabled engine does no observability work at all.
    """

    enabled = False
    metrics = NULL_METRICS

    def span(self, name: str, kind: str = "span", **attributes: Any) -> _NullContext:
        return _NULL_CONTEXT

    def event(self, name: str, **attributes: Any) -> None:
        return None

    def add_span(
        self,
        name: str,
        kind: str = "chunk",
        *,
        start: float,
        end: float,
        attributes: dict[str, Any] | None = None,
    ) -> None:
        return None

    def finish(self) -> None:
        return None

    @property
    def spans(self) -> list[Span]:
        return []

    def trace(self) -> Trace:
        return Trace()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullRecorder()"


#: The shared disabled recorder — the default wherever a recorder is
#: accepted.  Stateless, so sharing one instance across every runtime is
#: safe.
NULL_RECORDER = NullRecorder()
