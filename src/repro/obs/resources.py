"""Process resource accounting: CPU budget and peak memory.

Small, stdlib-only probes shared by the benchmarks and the observability
layer so every result row and trace report describes the machine the same
way.  Both functions degrade gracefully on platforms missing the probe
rather than raising.
"""

from __future__ import annotations

import os
import sys

__all__ = ["effective_cpu_count", "peak_rss_bytes"]


def effective_cpu_count() -> int:
    """CPU cores actually available to this process.

    Prefers the scheduler affinity mask (what cgroup/taskset-limited CI
    runners really grant) over ``os.cpu_count()``'s machine total.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def peak_rss_bytes() -> int | None:
    """High-water resident set size of this process, in bytes.

    Reads ``resource.getrusage(RUSAGE_SELF).ru_maxrss``; the unit is
    kilobytes on Linux and bytes on macOS, normalised here.  Returns
    ``None`` where the ``resource`` module is unavailable (e.g. Windows).
    Note this is the lifetime peak — it never decreases, and in a pooled
    run it covers only the parent process, not the workers.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - exercised on macOS only
        return int(peak)
    return int(peak) * 1024
