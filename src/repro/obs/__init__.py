"""``repro.obs`` — structured observability for the whole engine.

One subsystem, four concerns:

* **Tracing** (:mod:`~repro.obs.trace`): hierarchical spans
  (run → stage → chunk → event) on one monotonic clock
  (:mod:`~repro.obs.clock`), recorded by :class:`TraceRecorder` or the
  allocation-free :data:`NULL_RECORDER` default.
* **Metrics** (:mod:`~repro.obs.metrics`): named counters and gauges with a
  ``<family>.hits``/``.misses`` convention the report renderer understands.
* **Sinks & exports** (:mod:`~repro.obs.sinks`, :mod:`~repro.obs.chrome`,
  :mod:`~repro.obs.report`): stream a run to JSONL, read it back, render a
  terminal report, or export Chrome ``trace_event`` JSON.
* **Process probes** (:mod:`~repro.obs.resources`,
  :mod:`~repro.obs.logs`): CPU/RSS accounting and the library's logging
  seam.

The hard contract, shared with every other engine knob: observability only
*observes*. Tracing on or off, engine outputs are byte-identical, and the
disabled path does no per-item Python work (call sites gate on
``recorder.enabled``). The ``obs-clock-discipline`` lint rule keeps direct
``time.perf_counter()``/``time.monotonic()`` calls out of the rest of the
tree so no timing bypasses the trace.
"""

from repro.obs.chrome import chrome_trace, write_chrome_trace
from repro.obs.logs import configure_cli_logging, get_logger
from repro.obs.metrics import Metrics, NullMetrics, NULL_METRICS
from repro.obs.report import render_trace_report
from repro.obs.resources import effective_cpu_count, peak_rss_bytes
from repro.obs.sinks import (
    TRACE_FORMAT_VERSION,
    JsonlSink,
    MemorySink,
    TraceFormatError,
    read_trace_jsonl,
)
from repro.obs.trace import NULL_RECORDER, NullRecorder, Span, Trace, TraceRecorder

__all__ = [
    "NULL_METRICS",
    "NULL_RECORDER",
    "TRACE_FORMAT_VERSION",
    "JsonlSink",
    "MemorySink",
    "Metrics",
    "NullMetrics",
    "NullRecorder",
    "Span",
    "Trace",
    "TraceFormatError",
    "TraceRecorder",
    "chrome_trace",
    "configure_cli_logging",
    "effective_cpu_count",
    "get_logger",
    "peak_rss_bytes",
    "read_trace_jsonl",
    "render_trace_report",
    "write_chrome_trace",
]
