"""The monotonic clock behind every trace timestamp.

One seam, one clock: every duration the engine reports — stage spans, chunk
spans, profiler timings — comes from :func:`now`, which reads
``time.perf_counter()`` (CLOCK_MONOTONIC on the platforms we run on).  The
``obs-clock-discipline`` lint rule (:mod:`repro.analysis.rules.observability`)
rejects direct ``time.perf_counter()`` / ``time.monotonic()`` calls outside
this package, so timing that matters cannot bypass the trace: code that
wants a timestamp either opens a recorder span or reads this clock.

On every major platform ``perf_counter`` is a system-wide clock (Linux
``CLOCK_MONOTONIC``, Windows QPC, macOS ``mach_absolute_time``), so readings
taken inside process-pool workers are comparable with the parent's — which
is what lets worker-measured chunk spans land on the same timeline as the
parent's stage spans in a Chrome trace.
"""

from __future__ import annotations

import time


def now() -> float:
    """Seconds on the shared monotonic timeline (see module docstring)."""
    return time.perf_counter()
