"""Chrome ``trace_event`` export: view a run as a flame chart.

Converts a :class:`~repro.obs.trace.Trace` into the JSON object format
consumed by ``chrome://tracing`` / Perfetto: spans become complete
(``"ph": "X"``) duration events, zero-length trace events become instants
(``"ph": "i"``), timestamps are microseconds rebased to the earliest span
so the chart starts at zero, and the final metric values ride along in
``otherData``.  Everything renders on one thread track — the engine records
parent-side on one thread, and worker-measured chunks share the parent's
monotonic timeline (:mod:`repro.obs.clock`), so nesting alone tells the
story.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.trace import Trace

__all__ = ["chrome_trace", "write_chrome_trace"]


def _base_time(trace: Trace) -> float:
    starts = [span.start for span in trace.walk()]
    return min(starts) if starts else 0.0


def chrome_trace(trace: Trace) -> dict[str, Any]:
    """``trace`` as a ``trace_event`` JSON object (not yet serialised)."""
    base = _base_time(trace)
    events: list[dict[str, Any]] = []
    for span in trace.walk():
        ts = (span.start - base) * 1e6
        event: dict[str, Any] = {
            "name": span.name,
            "cat": span.kind,
            "ts": ts,
            "pid": 0,
            "tid": 0,
        }
        if span.kind == "event":
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = span.duration * 1e6
        if span.attributes:
            event["args"] = span.attributes
        events.append(event)
    # Stable flame-chart layout: Chrome draws nested slices correctly when
    # events are time-ordered; ties broken by longer-first so parents
    # precede the children they enclose.
    events.sort(key=lambda e: (e["ts"], -e.get("dur", 0.0)))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": trace.counters,
            "gauges": trace.gauges,
        },
    }


def write_chrome_trace(trace: Trace, path: str | Path) -> None:
    """Serialise :func:`chrome_trace` to ``path`` (pretty-printed JSON)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(chrome_trace(trace), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
