"""Declarative pipeline and experiment specs.

Specs are plain dataclasses that round-trip to/from JSON and TOML and
resolve component *names* through :mod:`repro.registry` at build time:

* :class:`~repro.specs.pipeline.PipelineSpec` — blockings, clean-up
  strategy/thresholds, pre-cleanup rule and execution-engine settings,
* :class:`~repro.specs.experiment.ExperimentSpec` — dataset, model and
  fine-tuning protocol around a pipeline spec,
* :class:`~repro.specs.errors.SpecValidationError` — every loader error
  names the offending key (``pipeline.blocking[1].name: ...``).

The high-level entry points (``load_spec`` / ``build_pipeline`` /
``run_experiment``) live in :mod:`repro.api`.
"""

from repro.specs.errors import SpecValidationError
from repro.specs.pipeline import (
    BLOCKING_RECIPES,
    GAMMA_INFINITY,
    CleanupSpec,
    ComponentSpec,
    PipelineSpec,
    PreCleanupSpec,
    RuntimeSpec,
    StateSpec,
)
from repro.specs.experiment import ExperimentSpec

__all__ = [
    "BLOCKING_RECIPES",
    "GAMMA_INFINITY",
    "CleanupSpec",
    "ComponentSpec",
    "ExperimentSpec",
    "PipelineSpec",
    "PreCleanupSpec",
    "RuntimeSpec",
    "SpecValidationError",
    "StateSpec",
]
