"""Declarative description of one entity-group-matching pipeline.

A :class:`PipelineSpec` is pure data: which blockings generate candidates,
which clean-up strategy runs with which thresholds, whether the pre-cleanup
rule is active, and how the execution engine is configured.  Components are
referenced *by name* and resolved through :mod:`repro.registry`, so a spec
written to JSON or TOML builds the exact same pipeline everywhere —
including components registered by third parties.

The Table 2 blocking recipes live here as data too
(:data:`BLOCKING_RECIPES`), replacing the hand-wired ``if kind == ...``
chains the experiment harness used to carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence
from typing import Any

from repro.specs.errors import SpecValidationError
from repro.specs.serde import dumps_json, dumps_toml, loads_json, loads_toml

#: Sentinel accepted for ``cleanup.gamma``: disable the minimum-cut phase
#: (γ = ∞, the paper's BC-only sensitivity variant).  TOML has no null, so
#: the spec spells infinity as this string.
GAMMA_INFINITY = "inf"


@dataclass(frozen=True)
class ComponentSpec:
    """A registry component reference: a name plus constructor params."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"name": self.name}
        if self.params:
            data["params"] = dict(self.params)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], key: str) -> "ComponentSpec":
        table = _expect_table(data, key)
        _reject_unknown_keys(table, {"name", "params"}, key)
        name = _expect_str(table.get("name"), f"{key}.name")
        params = table.get("params", {})
        if not isinstance(params, Mapping):
            raise SpecValidationError(f"{key}.params", "expected a table of parameters")
        return cls(name=name, params=dict(params))


@dataclass(frozen=True)
class CleanupSpec:
    """Graph clean-up strategy selection and Algorithm 1 thresholds.

    Unset thresholds (``None``) are derived at build time from the dataset's
    source count, exactly like the experiment harness always did:
    ``mu = #sources``, ``gamma = 5 * mu``.  ``gamma = "inf"`` disables the
    minimum-cut phase.
    """

    strategy: str = "gralmatch"
    gamma: int | str | None = None
    mu: int | None = None

    def __post_init__(self) -> None:
        if isinstance(self.gamma, str) and self.gamma != GAMMA_INFINITY:
            raise SpecValidationError(
                "cleanup.gamma", f'expected an integer or "{GAMMA_INFINITY}", got {self.gamma!r}'
            )

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {}
        if self.strategy != "gralmatch":
            data["strategy"] = self.strategy
        if self.gamma is not None:
            data["gamma"] = self.gamma
        if self.mu is not None:
            data["mu"] = self.mu
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], key: str) -> "CleanupSpec":
        table = _expect_table(data, key)
        _reject_unknown_keys(table, {"strategy", "gamma", "mu"}, key)
        strategy = _expect_str(table.get("strategy", "gralmatch"), f"{key}.strategy")
        gamma = table.get("gamma")
        if isinstance(gamma, str) and gamma != GAMMA_INFINITY:
            raise SpecValidationError(
                f"{key}.gamma",
                f'expected an integer or "{GAMMA_INFINITY}", got {gamma!r}',
            )
        if gamma is not None and gamma != GAMMA_INFINITY:
            gamma = _expect_int(gamma, f"{key}.gamma", minimum=1)
        mu = table.get("mu")
        if mu is not None:
            mu = _expect_int(mu, f"{key}.mu", minimum=1)
        return cls(strategy=strategy, gamma=gamma, mu=mu)


@dataclass(frozen=True)
class PreCleanupSpec:
    """The pre-cleanup rule (Section 4.2.1), or its kind-derived default.

    ``enabled = None`` defers the decision to the dataset kind (enabled for
    companies, disabled otherwise), matching the experiment harness.
    """

    enabled: bool | None = None
    max_component_size: int = 50
    target_blocking: str = "token_overlap"

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {}
        if self.enabled is not None:
            data["enabled"] = self.enabled
        if self.max_component_size != 50:
            data["max_component_size"] = self.max_component_size
        if self.target_blocking != "token_overlap":
            data["target_blocking"] = self.target_blocking
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], key: str) -> "PreCleanupSpec":
        table = _expect_table(data, key)
        _reject_unknown_keys(
            table, {"enabled", "max_component_size", "target_blocking"}, key
        )
        enabled = table.get("enabled")
        if enabled is not None and not isinstance(enabled, bool):
            raise SpecValidationError(f"{key}.enabled", f"expected a boolean, got {enabled!r}")
        return cls(
            enabled=enabled,
            max_component_size=_expect_int(
                table.get("max_component_size", 50), f"{key}.max_component_size", minimum=1
            ),
            target_blocking=_expect_str(
                table.get("target_blocking", "token_overlap"), f"{key}.target_blocking"
            ),
        )


@dataclass(frozen=True)
class RuntimeSpec:
    """Execution-engine settings (see :class:`repro.runtime.RuntimeConfig`)."""

    workers: int = 1
    batch_size: int = 2048
    executor: str = "process"
    blocking_shards: int = 1
    profile_cache: bool = True
    columnar_dispatch: bool = True
    warm_pool: bool = True
    trace: str | None = None

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {}
        if self.workers != 1:
            data["workers"] = self.workers
        if self.batch_size != 2048:
            data["batch_size"] = self.batch_size
        if self.executor != "process":
            data["executor"] = self.executor
        if self.blocking_shards != 1:
            data["blocking_shards"] = self.blocking_shards
        if not self.profile_cache:
            data["profile_cache"] = False
        if not self.columnar_dispatch:
            data["columnar_dispatch"] = False
        if not self.warm_pool:
            data["warm_pool"] = False
        if self.trace is not None:
            data["trace"] = self.trace
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], key: str) -> "RuntimeSpec":
        table = _expect_table(data, key)
        _reject_unknown_keys(
            table,
            {
                "workers",
                "batch_size",
                "executor",
                "blocking_shards",
                "profile_cache",
                "columnar_dispatch",
                "warm_pool",
                "trace",
            },
            key,
        )
        executor = _expect_str(table.get("executor", "process"), f"{key}.executor")
        trace = table.get("trace")
        if trace is not None:
            trace = _expect_str(trace, f"{key}.trace")
        from repro.runtime import EXECUTOR_KINDS

        if executor not in EXECUTOR_KINDS:
            raise SpecValidationError(
                f"{key}.executor", f"expected one of {list(EXECUTOR_KINDS)}, got {executor!r}"
            )
        return cls(
            workers=_expect_int(table.get("workers", 1), f"{key}.workers", minimum=1),
            batch_size=_expect_int(table.get("batch_size", 2048), f"{key}.batch_size", minimum=1),
            executor=executor,
            blocking_shards=_expect_int(
                table.get("blocking_shards", 1), f"{key}.blocking_shards", minimum=1
            ),
            profile_cache=_expect_bool(
                table.get("profile_cache", True), f"{key}.profile_cache"
            ),
            columnar_dispatch=_expect_bool(
                table.get("columnar_dispatch", True), f"{key}.columnar_dispatch"
            ),
            warm_pool=_expect_bool(
                table.get("warm_pool", True), f"{key}.warm_pool"
            ),
            trace=trace,
        )

    def to_runtime_config(self):
        from repro.runtime import RuntimeConfig

        return RuntimeConfig(
            workers=self.workers,
            batch_size=self.batch_size,
            executor=self.executor,
            blocking_shards=self.blocking_shards,
            profile_cache=self.profile_cache,
            columnar_dispatch=self.columnar_dispatch,
            warm_pool=self.warm_pool,
            trace=self.trace,
        )


@dataclass(frozen=True)
class StateSpec:
    """Persistent-match-state settings (``[pipeline.state]``).

    ``dir`` names the state directory ``repro ingest`` uses when no
    ``--state`` flag is given; ``autosave`` controls whether every ingest
    persists the updated state back to that directory (on by default —
    switch off to batch several ingests per save).
    """

    dir: str | None = None
    autosave: bool = True

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {}
        if self.dir is not None:
            data["dir"] = self.dir
        if not self.autosave:
            data["autosave"] = False
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], key: str) -> "StateSpec":
        table = _expect_table(data, key)
        _reject_unknown_keys(table, {"dir", "autosave"}, key)
        state_dir = table.get("dir")
        if state_dir is not None:
            state_dir = _expect_str(state_dir, f"{key}.dir")
        return cls(
            dir=state_dir,
            autosave=_expect_bool(table.get("autosave", True), f"{key}.autosave"),
        )


#: The Table 2 blocking recipes, as data.  ``token_overlap`` deliberately
#: carries no ``top_n`` here: the builder injects the experiment-level
#: ``token_top_n`` default, and explicit spec params always win.
BLOCKING_RECIPES: dict[str, tuple[ComponentSpec, ...]] = {
    "companies": (ComponentSpec("id_overlap"), ComponentSpec("token_overlap")),
    "securities": (ComponentSpec("id_overlap"), ComponentSpec("issuer_match")),
    "products": (ComponentSpec("token_overlap"),),
}


@dataclass(frozen=True)
class PipelineSpec:
    """Declarative pipeline: blockings + clean-up + pre-cleanup + runtime."""

    blocking: tuple[ComponentSpec, ...] = ()
    cleanup: CleanupSpec = field(default_factory=CleanupSpec)
    pre_cleanup: PreCleanupSpec = field(default_factory=PreCleanupSpec)
    runtime: RuntimeSpec = field(default_factory=RuntimeSpec)
    state: StateSpec = field(default_factory=StateSpec)

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {}
        if self.blocking:
            data["blocking"] = [component.to_dict() for component in self.blocking]
        for name, sub in (
            ("cleanup", self.cleanup.to_dict()),
            ("pre_cleanup", self.pre_cleanup.to_dict()),
            ("runtime", self.runtime.to_dict()),
            ("state", self.state.to_dict()),
        ):
            if sub:
                data[name] = sub
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], key: str = "pipeline") -> "PipelineSpec":
        table = _expect_table(data, key)
        _reject_unknown_keys(
            table, {"blocking", "cleanup", "pre_cleanup", "runtime", "state"}, key
        )
        raw_blocking = table.get("blocking", [])
        if not isinstance(raw_blocking, Sequence) or isinstance(raw_blocking, (str, bytes)):
            raise SpecValidationError(f"{key}.blocking", "expected an array of blocking tables")
        blocking = tuple(
            ComponentSpec.from_dict(item, f"{key}.blocking[{index}]")
            for index, item in enumerate(raw_blocking)
        )
        return cls(
            blocking=blocking,
            cleanup=CleanupSpec.from_dict(table.get("cleanup", {}), f"{key}.cleanup"),
            pre_cleanup=PreCleanupSpec.from_dict(
                table.get("pre_cleanup", {}), f"{key}.pre_cleanup"
            ),
            runtime=RuntimeSpec.from_dict(table.get("runtime", {}), f"{key}.runtime"),
            state=StateSpec.from_dict(table.get("state", {}), f"{key}.state"),
        )

    def to_json(self) -> str:
        return dumps_json({"pipeline": self.to_dict()})

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        data = loads_json(text)
        return cls.from_dict(data.get("pipeline", data), "pipeline")

    def to_toml(self) -> str:
        return dumps_toml({"pipeline": self.to_dict()})

    @classmethod
    def from_toml(cls, text: str) -> "PipelineSpec":
        data = loads_toml(text)
        return cls.from_dict(data.get("pipeline", data), "pipeline")

    # -- recipes ------------------------------------------------------------

    @classmethod
    def for_kind(cls, kind: str, **overrides: Any) -> "PipelineSpec":
        """The Table 2 pipeline for a dataset kind (companies/securities/products)."""
        try:
            recipe = BLOCKING_RECIPES[kind]
        except KeyError:
            raise SpecValidationError(
                "pipeline.blocking",
                f"unknown dataset kind {kind!r}; known: {sorted(BLOCKING_RECIPES)}",
            ) from None
        return cls(blocking=recipe, **overrides)

    # -- builders -----------------------------------------------------------

    def build_blocking(self, extra_params: Mapping[str, Mapping[str, Any]] | None = None):
        """Resolve the blocking list through the registry.

        ``extra_params`` injects per-blocking-name parameters the spec file
        cannot express (e.g. the ``issuer_match`` company-group mapping that
        only exists at run time); explicit spec params win over injected
        ones.  Multiple blockings are combined with first-blocking-wins
        de-duplication, exactly like Table 2.
        """
        if not self.blocking:
            raise SpecValidationError("pipeline.blocking", "at least one blocking is required")
        from repro.blocking.combine import CombinedBlocking
        from repro.registry import BLOCKINGS

        extra = extra_params or {}
        parts = []
        for component in self.blocking:
            params = {**extra.get(component.name, {}), **component.params}
            parts.append(BLOCKINGS.create(component.name, **params))
        if len(parts) == 1:
            return parts[0]
        return CombinedBlocking(parts)

    def build_cleanup_config(self, num_sources: int | None = None):
        """Concrete :class:`~repro.core.cleanup.CleanupConfig` for this spec.

        Unset ``mu`` falls back to ``num_sources`` (the paper's default) or
        the library default of 5; unset ``gamma`` falls back to ``5 * mu``.
        """
        from repro.core.cleanup import CleanupConfig

        mu = self.cleanup.mu if self.cleanup.mu is not None else (num_sources or 5)
        if self.cleanup.gamma == GAMMA_INFINITY:
            gamma: int | None = None
        elif self.cleanup.gamma is None:
            gamma = 5 * mu
        else:
            gamma = self.cleanup.gamma
        return CleanupConfig(gamma=gamma, mu=mu)

    def build_pre_cleanup_config(self, kind: str | None = None):
        """Concrete :class:`~repro.core.precleanup.PreCleanupConfig`.

        When ``enabled`` is unset, the rule is active exactly for the
        companies dataset kind (``kind=None`` counts as enabled, matching
        the library default).
        """
        from repro.core.precleanup import PreCleanupConfig

        enabled = self.pre_cleanup.enabled
        if enabled is None:
            enabled = True if kind is None else kind == "companies"
        return PreCleanupConfig(
            max_component_size=self.pre_cleanup.max_component_size,
            target_blocking=self.pre_cleanup.target_blocking,
            enabled=enabled,
        )


# -- validation helpers -----------------------------------------------------


def _expect_table(value: Any, key: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise SpecValidationError(key, f"expected a table/object, got {type(value).__name__}")
    return value


def _expect_str(value: Any, key: str) -> str:
    if not isinstance(value, str) or not value:
        raise SpecValidationError(key, f"expected a non-empty string, got {value!r}")
    return value


def _expect_bool(value: Any, key: str) -> bool:
    if not isinstance(value, bool):
        raise SpecValidationError(key, f"expected a boolean, got {value!r}")
    return value


def _expect_int(value: Any, key: str, minimum: int | None = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecValidationError(key, f"expected an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise SpecValidationError(key, f"expected an integer >= {minimum}, got {value}")
    return value


def _reject_unknown_keys(table: Mapping[str, Any], allowed: set[str], key: str) -> None:
    for unknown in table:
        if unknown not in allowed:
            raise SpecValidationError(
                f"{key}.{unknown}", f"unknown key; allowed: {sorted(allowed)}"
            )
