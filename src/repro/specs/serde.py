"""JSON / TOML (de)serialisation helpers for the declarative specs.

Parsing uses the standard library (:mod:`json`, :mod:`tomllib`).  Writing
TOML has no stdlib counterpart, so :func:`dumps_toml` implements the small
subset the specs need — scalars, arrays of scalars, nested tables and
arrays of tables — which round-trips through :func:`tomllib.loads`.
"""

from __future__ import annotations

import json
import re
import tomllib
from collections.abc import Mapping, Sequence
from typing import Any

from repro.specs.errors import SpecValidationError

_BARE_KEY = re.compile(r"^[A-Za-z0-9_-]+$")


def loads_json(text: str, source: str = "spec") -> dict[str, Any]:
    """Parse a JSON spec document into a mapping (with a helpful error)."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SpecValidationError(source, f"invalid JSON: {error}") from error
    if not isinstance(data, dict):
        raise SpecValidationError(source, "top level must be a JSON object")
    return data


def loads_toml(text: str, source: str = "spec") -> dict[str, Any]:
    """Parse a TOML spec document into a mapping (with a helpful error)."""
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as error:
        raise SpecValidationError(source, f"invalid TOML: {error}") from error


def dumps_json(data: Mapping[str, Any]) -> str:
    return json.dumps(data, indent=2, sort_keys=False) + "\n"


def dumps_toml(data: Mapping[str, Any]) -> str:
    """Serialise a nested mapping to TOML.

    Supported values: str / int / float / bool, lists of those, mappings
    (emitted as ``[dotted.tables]``) and lists of mappings (emitted as
    ``[[arrays.of.tables]]``).  ``None`` values must be stripped by the
    caller — TOML has no null.
    """
    lines: list[str] = []
    _emit_table(data, prefix=(), lines=lines)
    text = "\n".join(lines).strip("\n")
    return text + "\n" if text else ""


def _emit_table(table: Mapping[str, Any], prefix: tuple[str, ...], lines: list[str]) -> None:
    scalars = {k: v for k, v in table.items() if not _is_table_like(v)}
    nested = {k: v for k, v in table.items() if _is_table_like(v)}

    for key, value in scalars.items():
        lines.append(f"{_format_key(key)} = {_format_value(value, key)}")

    for key, value in nested.items():
        path = prefix + (key,)
        if isinstance(value, Mapping):
            # A table with no scalar entries is defined implicitly by its
            # sub-tables; emitting its header would only add noise.
            if any(not _is_table_like(v) for v in value.values()) or not value:
                lines.append("")
                lines.append(f"[{_format_path(path)}]")
            _emit_table(value, path, lines)
        else:  # list of tables
            for item in value:
                lines.append("")
                lines.append(f"[[{_format_path(path)}]]")
                _emit_table(item, path, lines)


def _is_table_like(value: Any) -> bool:
    if isinstance(value, Mapping):
        return True
    return (
        isinstance(value, Sequence)
        and not isinstance(value, (str, bytes))
        and any(isinstance(item, Mapping) for item in value)
    )


def _format_path(path: tuple[str, ...]) -> str:
    return ".".join(_format_key(part) for part in path)


def _format_key(key: str) -> str:
    if _BARE_KEY.match(key):
        return key
    return json.dumps(key)


def _format_value(value: Any, key: str) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
            raise SpecValidationError(key, "non-finite floats are not serialisable")
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
        inner = ", ".join(_format_value(item, key) for item in value)
        return f"[{inner}]"
    if isinstance(value, Mapping):
        inner = ", ".join(
            f"{_format_key(k)} = {_format_value(v, f'{key}.{k}')}" for k, v in value.items()
        )
        return f"{{{inner}}}"
    raise SpecValidationError(key, f"unsupported value type {type(value).__name__}")
