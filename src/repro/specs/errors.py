"""Spec validation errors that name the offending key."""

from __future__ import annotations


class SpecValidationError(ValueError):
    """A declarative spec document failed validation.

    ``key`` is the dotted path of the offending entry (e.g.
    ``pipeline.blocking[1].name``) so config mistakes are locatable without
    reading the loader source; the message always starts with it.
    """

    def __init__(self, key: str, message: str) -> None:
        self.key = key
        super().__init__(f"{key}: {message}")
