"""Declarative description of one end-to-end matching experiment.

An :class:`ExperimentSpec` is the config-file counterpart of
:class:`repro.evaluation.experiment.ExperimentConfig`: which dataset to
load, which model from the zoo to fine-tune, the fine-tuning protocol, and
an optional :class:`~repro.specs.pipeline.PipelineSpec` overriding the
Table 2 recipe derived from the dataset kind.

The canonical file layout (TOML; JSON mirrors it key for key)::

    [experiment]
    dataset = "data/companies.csv"
    kind = "companies"
    model = "logistic"
    epochs = 1
    seed = 0

    [[pipeline.blocking]]
    name = "id_overlap"

    [[pipeline.blocking]]
    name = "token_overlap"
    params = {top_n = 5}

    [pipeline.runtime]
    workers = 2
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import Any

from repro.specs.errors import SpecValidationError
from repro.specs.pipeline import (
    BLOCKING_RECIPES,
    PipelineSpec,
    _expect_int,
    _expect_str,
    _expect_table,
    _reject_unknown_keys,
)
from repro.specs.serde import dumps_json, dumps_toml, loads_json, loads_toml

_EXPERIMENT_KEYS = {
    "dataset",
    "kind",
    "model",
    "epochs",
    "seed",
    "negative_ratio",
    "token_top_n",
}


@dataclass(frozen=True)
class ExperimentSpec:
    """One Table 4 run as data: dataset + model + protocol + pipeline."""

    #: Path to the dataset CSV (``None`` when the caller passes a Dataset).
    dataset: str | None = None
    #: Dataset kind; selects the Table 2 recipe when ``pipeline`` is unset.
    kind: str = "companies"
    #: Named model spec from :data:`repro.matching.models.MODEL_SPECS`.
    model: str = "distilbert-128-all"
    epochs: int = 3
    seed: int = 0
    negative_ratio: int = 5
    #: Default ``top_n`` injected into ``token_overlap`` blockings that do
    #: not set it explicitly.
    token_top_n: int = 5
    pipeline: PipelineSpec = field(default_factory=PipelineSpec)

    def __post_init__(self) -> None:
        if self.kind not in BLOCKING_RECIPES:
            raise SpecValidationError(
                "experiment.kind",
                f"expected one of {sorted(BLOCKING_RECIPES)}, got {self.kind!r}",
            )
        # Validate the model name here so a typo fails as a named-key spec
        # error (everywhere: file loading and programmatic construction)
        # rather than a KeyError deep inside the fine-tuning run.  Imported
        # lazily: the model zoo pulls in numpy.
        from repro.matching.models import MODEL_SPECS

        if self.model not in MODEL_SPECS:
            raise SpecValidationError(
                "experiment.model",
                f"unknown model {self.model!r}; available: {sorted(MODEL_SPECS)}",
            )

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        experiment: dict[str, Any] = {}
        if self.dataset is not None:
            experiment["dataset"] = self.dataset
        experiment["kind"] = self.kind
        experiment["model"] = self.model
        for name, value, default in (
            ("epochs", self.epochs, 3),
            ("seed", self.seed, 0),
            ("negative_ratio", self.negative_ratio, 5),
            ("token_top_n", self.token_top_n, 5),
        ):
            if value != default:
                experiment[name] = value
        data: dict[str, Any] = {"experiment": experiment}
        pipeline = self.pipeline.to_dict()
        if pipeline:
            data["pipeline"] = pipeline
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        document = _expect_table(data, "spec")
        _reject_unknown_keys(document, {"experiment", "pipeline"}, "spec")
        table = _expect_table(document.get("experiment", {}), "experiment")
        _reject_unknown_keys(table, _EXPERIMENT_KEYS, "experiment")

        dataset = table.get("dataset")
        if dataset is not None:
            dataset = _expect_str(dataset, "experiment.dataset")
        kind = _expect_str(table.get("kind", "companies"), "experiment.kind")
        if kind not in BLOCKING_RECIPES:
            raise SpecValidationError(
                "experiment.kind",
                f"expected one of {sorted(BLOCKING_RECIPES)}, got {kind!r}",
            )
        return cls(
            dataset=dataset,
            kind=kind,
            model=_expect_str(table.get("model", "distilbert-128-all"), "experiment.model"),
            epochs=_expect_int(table.get("epochs", 3), "experiment.epochs", minimum=1),
            seed=_expect_int(table.get("seed", 0), "experiment.seed"),
            negative_ratio=_expect_int(
                table.get("negative_ratio", 5), "experiment.negative_ratio", minimum=0
            ),
            token_top_n=_expect_int(
                table.get("token_top_n", 5), "experiment.token_top_n", minimum=1
            ),
            pipeline=PipelineSpec.from_dict(document.get("pipeline", {}), "pipeline"),
        )

    def to_json(self) -> str:
        return dumps_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(loads_json(text))

    def to_toml(self) -> str:
        return dumps_toml(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(loads_toml(text))

    # -- bridges ------------------------------------------------------------

    @property
    def blocking_specs(self):
        """The effective blocking list: explicit pipeline, else the recipe."""
        if self.pipeline.blocking:
            return self.pipeline.blocking
        return BLOCKING_RECIPES[self.kind]

    def to_experiment_config(self):
        """Build the :class:`~repro.evaluation.experiment.ExperimentConfig`.

        Threshold fields left unset in the spec stay unset here too, so the
        experiment derives them from the dataset it actually loads (``mu``
        from the source count, ``gamma = 5 * mu``, pre-cleanup from the
        kind) — byte-identical to the pre-spec behaviour.
        """
        from repro.evaluation.experiment import ExperimentConfig

        cleanup_spec = self.pipeline.cleanup
        partial_cleanup = None
        if cleanup_spec.gamma is not None or cleanup_spec.mu is not None:
            partial_cleanup = cleanup_spec
        pre_cleanup = None
        if self.pipeline.pre_cleanup != type(self.pipeline.pre_cleanup)():
            pre_cleanup = self.pipeline.build_pre_cleanup_config(self.kind)
        return ExperimentConfig(
            model=self.model,
            dataset_kind=self.kind,
            cleanup_spec=partial_cleanup,
            pre_cleanup=pre_cleanup,
            token_top_n=self.token_top_n,
            negative_ratio=self.negative_ratio,
            num_epochs=self.epochs,
            seed=self.seed,
            blocking=self.pipeline.blocking or None,
            cleanup_strategy=cleanup_spec.strategy,
            runtime=self.pipeline.runtime.to_runtime_config(),
        )
