"""Edge betweenness centrality (Brandes' algorithm).

GraLMatch removes, one at a time, the edge with the highest betweenness
centrality from components that are still larger than the expected group
size.  False-positive matches that act as the only bridge between two densely
connected groups carry most shortest paths between the groups and therefore
receive the highest centrality.

The implementation follows Brandes (2001), "A faster algorithm for
betweenness centrality", adapted to accumulate edge (rather than node)
scores, on unweighted graphs (all predicted matches count equally).
"""

from __future__ import annotations

from collections import deque

from repro.graphs.graph import Edge, Graph, Node, canonical_edge, sorted_nodes


def edge_betweenness_centrality(
    graph: Graph,
    normalized: bool = True,
) -> dict[Edge, float]:
    """Compute betweenness centrality for every edge of ``graph``.

    Parameters
    ----------
    graph:
        The (undirected, unweighted) graph to analyse.
    normalized:
        If true, scores are divided by the number of node pairs
        ``n * (n - 1) / 2`` so that values are comparable across components
        of different sizes.  GraLMatch only uses the arg-max per component,
        for which normalisation is irrelevant, but the normalised values are
        what networkx reports and what the tests compare against.

    Returns
    -------
    dict
        Mapping from canonical edge to its centrality score.  Every edge of
        the graph is present in the result.
    """
    centrality: dict[Edge, float] = {edge: 0.0 for edge in graph.edges()}

    # Sorted source order plus sorted neighbour expansion make the floating-
    # point accumulation order — and with it any near-tie between edges —
    # independent of set/dict hash order (PYTHONHASHSEED).  The adjacency is
    # sorted once here, not per BFS visit: every node is a BFS source, so
    # re-sorting inside the traversal would cost O(V · E log d).
    adjacency: dict[Node, list[Node]] = {
        node: graph.sorted_neighbors(node) for node in sorted_nodes(graph.nodes())
    }
    for source in adjacency:
        _accumulate_single_source(adjacency, source, centrality)

    # Each undirected pair (s, t) is counted twice (once from s, once from t).
    for edge in centrality:
        centrality[edge] /= 2.0

    if normalized:
        n = graph.num_nodes
        scale = (n * (n - 1)) / 2.0
        if scale > 0:
            for edge in centrality:
                centrality[edge] /= scale
    return centrality


def _accumulate_single_source(
    adjacency: dict[Node, list[Node]],
    source: Node,
    centrality: dict[Edge, float],
) -> None:
    """Single-source shortest-path pass of Brandes' algorithm (BFS variant).

    ``adjacency`` maps every node to its neighbours in sorted order (built
    once by the caller), which keeps the accumulation deterministic.
    """
    stack: list[Node] = []
    predecessors: dict[Node, list[Node]] = {node: [] for node in adjacency}
    sigma: dict[Node, float] = {node: 0.0 for node in adjacency}
    distance: dict[Node, int] = {node: -1 for node in adjacency}
    sigma[source] = 1.0
    distance[source] = 0

    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        stack.append(node)
        for neighbour in adjacency[node]:
            if distance[neighbour] < 0:
                distance[neighbour] = distance[node] + 1
                queue.append(neighbour)
            if distance[neighbour] == distance[node] + 1:
                sigma[neighbour] += sigma[node]
                predecessors[neighbour].append(node)

    # Back-propagation of dependencies, accumulated on edges.
    delta: dict[Node, float] = {node: 0.0 for node in adjacency}
    while stack:
        node = stack.pop()
        for pred in predecessors[node]:
            contribution = (sigma[pred] / sigma[node]) * (1.0 + delta[node])
            centrality[canonical_edge(pred, node)] += contribution
            delta[pred] += contribution


def max_betweenness_edge(graph: Graph) -> tuple[Edge, float]:
    """Return the edge with the highest betweenness centrality.

    Ties are broken deterministically by the canonical edge representation so
    that repeated clean-up runs remove the same edges.  Raises ``ValueError``
    on graphs without edges.
    """
    if graph.num_edges == 0:
        raise ValueError("graph has no edges")
    centrality = edge_betweenness_centrality(graph, normalized=False)
    best_edge, best_score = max(
        centrality.items(), key=lambda item: (item[1], _edge_key(item[0]))
    )
    return best_edge, best_score


def _edge_key(edge: Edge) -> tuple[str, str]:
    u, v = edge
    return (repr(u), repr(v))
