"""Maximum flow and minimum s-t edge cuts on unweighted undirected graphs.

The minimum *global* edge cut used by GraLMatch (``mincut.py``) is computed
from minimum s-t cuts: by Menger's theorem the size of a minimum s-t edge cut
equals the maximum number of edge-disjoint s-t paths, which we obtain with an
Edmonds–Karp style augmenting-path search on the unit-capacity directed
expansion of the undirected graph.
"""

from __future__ import annotations

from collections import deque

from repro.graphs.graph import Edge, Graph, Node, canonical_edge, sorted_nodes


class _ResidualNetwork:
    """Unit-capacity residual network for an undirected graph.

    Every undirected edge {u, v} becomes two directed arcs u→v and v→u of
    capacity 1.  Flow pushed on one arc creates residual capacity on the
    reverse arc, which is exactly the behaviour required for undirected
    max-flow with unit capacities.

    Adjacency lists are kept in sorted order so the shortest augmenting
    path chosen among equals — and therefore which minimum cut the search
    settles on — is independent of set hash order (``PYTHONHASHSEED``).
    """

    def __init__(self, graph: Graph) -> None:
        self.capacity: dict[tuple[Node, Node], int] = {}
        adj_sets: dict[Node, set[Node]] = {node: set() for node in graph.nodes()}
        for u, v in graph.edges():
            self.capacity[(u, v)] = 1
            self.capacity[(v, u)] = 1
            adj_sets[u].add(v)
            adj_sets[v].add(u)
        self.adj: dict[Node, list[Node]] = {
            node: sorted_nodes(neighbours) for node, neighbours in adj_sets.items()  # repro-lint: disable=unordered-iteration -- keyed lookup only; keys follow graph.nodes() order, values sorted here
        }

    def bfs_augmenting_path(self, source: Node, sink: Node) -> list[Node] | None:
        """Find a shortest augmenting path with positive residual capacity."""
        parents: dict[Node, Node] = {source: source}
        queue: deque[Node] = deque([source])
        while queue:
            node = queue.popleft()
            for neighbour in self.adj[node]:
                if neighbour in parents:
                    continue
                if self.capacity.get((node, neighbour), 0) <= 0:
                    continue
                parents[neighbour] = node
                if neighbour == sink:
                    return self._reconstruct(parents, source, sink)
                queue.append(neighbour)
        return None

    @staticmethod
    def _reconstruct(
        parents: dict[Node, Node], source: Node, sink: Node
    ) -> list[Node]:
        path = [sink]
        while path[-1] != source:
            path.append(parents[path[-1]])
        path.reverse()
        return path

    def push_unit_flow(self, path: list[Node]) -> None:
        """Push one unit of flow along ``path`` and update residuals."""
        for u, v in zip(path, path[1:]):
            self.capacity[(u, v)] = self.capacity.get((u, v), 0) - 1
            self.capacity[(v, u)] = self.capacity.get((v, u), 0) + 1

    def reset(self) -> None:
        """Restore every arc to capacity 1 (undo all pushed flow).

        Lets one network (and its sorted adjacency) be reused across the
        many s-t computations of a global minimum cut search instead of
        rebuilding and re-sorting the adjacency per target.
        """
        for arc in self.capacity:
            self.capacity[arc] = 1

    def saturate(self, source: Node, sink: Node) -> int:
        """Push augmenting paths until none remain; returns the flow value."""
        flow = 0
        while True:
            path = self.bfs_augmenting_path(source, sink)
            if path is None:
                return flow
            self.push_unit_flow(path)
            flow += 1

    def st_cut_edges(self, graph: Graph, source: Node) -> set[Edge]:
        """The cut induced by the current (saturated) flow: original edges
        crossing from the residual-reachable side of ``source``."""
        reachable = self.reachable_from(source)
        return {
            canonical_edge(u, v)
            for u, v in graph.edges()
            if (u in reachable) != (v in reachable)
        }

    def reachable_from(self, source: Node) -> set[Node]:
        """Nodes reachable from ``source`` through positive residual arcs."""
        seen = {source}
        queue: deque[Node] = deque([source])
        while queue:
            node = queue.popleft()
            for neighbour in self.adj[node]:
                if neighbour in seen:
                    continue
                if self.capacity.get((node, neighbour), 0) <= 0:
                    continue
                seen.add(neighbour)
                queue.append(neighbour)
        return seen


def max_flow(graph: Graph, source: Node, sink: Node) -> int:
    """Maximum number of edge-disjoint paths between ``source`` and ``sink``."""
    if source == sink:
        raise ValueError("source and sink must differ")
    if not graph.has_node(source) or not graph.has_node(sink):
        raise KeyError("source and sink must both be nodes of the graph")
    return _ResidualNetwork(graph).saturate(source, sink)


def minimum_st_edge_cut(graph: Graph, source: Node, sink: Node) -> set[Edge]:
    """Return a minimum set of edges separating ``source`` from ``sink``.

    After the max flow saturates, the cut consists of the original edges that
    cross from the residual-reachable side of ``source`` to the other side.
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    if not graph.has_node(source) or not graph.has_node(sink):
        raise KeyError("source and sink must both be nodes of the graph")

    network = _ResidualNetwork(graph)
    network.saturate(source, sink)
    return network.st_cut_edges(graph, source)
