"""Connected components of the match graph.

A connected component of the prediction graph is exactly the set of
*transitively matched records* implied by a pairwise matcher: every pair of
records joined by a path of positive predictions is considered a match.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.graphs.graph import Graph, Node
from repro.graphs.union_find import union_find_components


def connected_components(graph: Graph) -> list[set[Node]]:
    """Return the connected components of ``graph`` as a list of node sets.

    Components are computed with a disjoint-set forest (path compression +
    union by rank), which the clean-up hot paths recompute after every
    edge-removal round; :func:`bfs_connected_components` is the original
    breadth-first implementation, kept as the independent reference the
    property-based tests cross-check against.  The result is sorted by
    decreasing size, then by the smallest representation of a member node,
    so output is deterministic.
    """
    return union_find_components(graph.edges(), graph.nodes())


def bfs_connected_components(graph: Graph) -> list[set[Node]]:
    """Reference implementation of :func:`connected_components` via BFS.

    Iterative breadth-first search, so very large components (the
    problematic case GraLMatch is designed for) do not overflow the
    recursion limit.  Ordering is identical to the union-find version.
    """
    seen: set[Node] = set()
    components: list[set[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component = _bfs_component(graph, start)
        seen.update(component)
        components.append(component)
    components.sort(key=lambda comp: (-len(comp), min(repr(n) for n in comp)))
    return components


def _bfs_component(graph: Graph, start: Node) -> set[Node]:
    component = {start}
    queue: deque[Node] = deque([start])
    while queue:
        node = queue.popleft()
        for neighbour in graph.neighbors(node):
            if neighbour not in component:
                component.add(neighbour)
                queue.append(neighbour)
    return component


def component_of(graph: Graph, node: Node) -> set[Node]:
    """Return the connected component containing ``node``."""
    if not graph.has_node(node):
        raise KeyError(f"node {node!r} not in graph")
    return _bfs_component(graph, node)


def largest_component(graph: Graph) -> set[Node]:
    """Return the largest connected component (empty set for empty graphs)."""
    best: set[Node] = set()
    seen: set[Node] = set()
    for start in graph.nodes():
        if start in seen:
            continue
        component = _bfs_component(graph, start)
        seen.update(component)
        if len(component) > len(best):
            best = component
    return best


def components_from_edges(edges: Iterable[tuple[Node, Node]]) -> list[set[Node]]:
    """Convenience wrapper: connected components of an edge list."""
    return connected_components(Graph(edges))
