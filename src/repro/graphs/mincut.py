"""Global minimum edge cut of a connected component.

Algorithm 1 of the paper repeatedly removes a minimum edge cut from the
largest connected component while it is bigger than the threshold ``gamma``.
Removing a minimum edge cut is guaranteed to split the component, unlike
removing the highest-betweenness edge, which is why the paper uses it for
the coarse first phase.

Two implementations are provided:

* :func:`minimum_edge_cut` — Menger-style reduction to minimum s-t cuts
  (fix an arbitrary node ``s`` and take the best cut against every other
  node; correct because any global cut separates ``s`` from someone), which
  also yields the cut *edges* required by the clean-up.
* :func:`stoer_wagner_min_cut` — the Stoer–Wagner minimum cut value, used by
  the tests as an independent cross-check of the cut cardinality.
"""

from __future__ import annotations

from repro.graphs.components import connected_components
from repro.graphs.graph import Edge, Graph, Node, sorted_nodes
from repro.graphs.maxflow import _ResidualNetwork


def minimum_edge_cut(graph: Graph) -> set[Edge]:
    """Return a minimum cardinality set of edges disconnecting ``graph``.

    The graph must be connected and contain at least two nodes.  For the
    degenerate two-node graph the single connecting edge is the cut.

    The search fixes the minimum-degree node as the source (its degree is an
    upper bound on the cut size, which lets us stop early) and computes a
    minimum s-t cut towards every other node, keeping the smallest.  One
    residual network is built (and its adjacency sorted) once and reset
    between targets, and each target's saturated flow directly yields its
    cut — no second max-flow pass.
    """
    nodes = graph.nodes()
    if len(nodes) < 2:
        raise ValueError("minimum edge cut requires at least two nodes")
    if len(connected_components(graph)) > 1:
        # Already disconnected: the empty cut suffices.
        return set()

    source = min(nodes, key=lambda n: (graph.degree(n), repr(n)))
    best_cut: set[Edge] | None = None
    best_size = graph.degree(source) + 1
    network = _ResidualNetwork(graph)

    for target in sorted_nodes(nodes):
        if target == source:
            continue
        network.reset()
        flow = network.saturate(source, target)
        if flow < best_size:
            best_size = flow
            best_cut = network.st_cut_edges(graph, source)
            if best_size <= 1:
                break

    if best_cut is None:
        # ``source`` is isolated relative to every candidate target, meaning
        # the graph was not connected to begin with: the empty cut already
        # disconnects it.
        return set()
    return best_cut


def stoer_wagner_min_cut(graph: Graph) -> int:
    """Return the value (cardinality) of a global minimum edge cut.

    Implementation of the Stoer–Wagner algorithm on unit edge weights with
    simple O(n^2) minimum-cut-phase selection, sufficient for the component
    sizes seen during clean-up.  Used as an independent check of
    :func:`minimum_edge_cut`.
    """
    nodes = graph.nodes()
    if len(nodes) < 2:
        raise ValueError("minimum cut requires at least two nodes")

    # Weighted adjacency between "super-nodes" (merged vertex sets).
    weights: dict[Node, dict[Node, float]] = {n: {} for n in nodes}
    for u, v in graph.edges():
        weights[u][v] = weights[u].get(v, 0.0) + 1.0
        weights[v][u] = weights[v].get(u, 0.0) + 1.0

    active = list(nodes)
    best = float("inf")

    while len(active) > 1:
        cut_value, s, t = _minimum_cut_phase(weights, active)
        best = min(best, cut_value)
        _merge_nodes(weights, active, s, t)

    return int(best)


def _minimum_cut_phase(
    weights: dict[Node, dict[Node, float]], active: list[Node]
) -> tuple[float, Node, Node]:
    """One maximum-adjacency-search phase; returns (cut-of-the-phase, s, t)."""
    start = active[0]
    in_a = {start}
    order = [start]
    connectivity: dict[Node, float] = {
        node: weights[start].get(node, 0.0) for node in active if node != start
    }

    while len(order) < len(active):
        next_node = max(
            (node for node in active if node not in in_a),
            key=lambda node: (connectivity.get(node, 0.0), repr(node)),
        )
        in_a.add(next_node)
        order.append(next_node)
        for neighbour, weight in weights[next_node].items():  # repro-lint: disable=unordered-iteration -- adjacency dicts built in sorted-edge order; insertion order is deterministic
            if neighbour not in in_a and neighbour in connectivity:
                connectivity[neighbour] += weight

    t = order[-1]
    s = order[-2]
    cut_of_phase = sum(weights[t].values())  # repro-lint: disable=unordered-iteration -- deterministic insertion order (sorted-edge construction)
    return cut_of_phase, s, t


def _merge_nodes(
    weights: dict[Node, dict[Node, float]], active: list[Node], s: Node, t: Node
) -> None:
    """Merge node ``t`` into ``s`` (contracting the edge between them)."""
    for neighbour, weight in list(weights[t].items()):  # repro-lint: disable=unordered-iteration -- deterministic insertion order (sorted-edge construction)
        if neighbour == s:
            continue
        weights[s][neighbour] = weights[s].get(neighbour, 0.0) + weight
        weights[neighbour][s] = weights[neighbour].get(s, 0.0) + weight
    for neighbour in list(weights[t]):
        weights[neighbour].pop(t, None)
    weights.pop(t, None)
    active.remove(t)
