"""Disjoint-set union (union-find) over hashable nodes.

Connected components are the hottest graph primitive in the pipeline: they
are recomputed for the pre-cleanup sizing rule, for the transitive closure,
and after every edge-removal round of Algorithm 1.  A disjoint-set forest
with path compression and union by rank answers the same question in
near-linear time — O(m α(n)) over m edges — without materialising adjacency
sets or re-walking the graph per component, unlike the BFS sweep it
replaces on hot paths (which remains available as
:func:`repro.graphs.components.bfs_connected_components` and is used by the
property-based tests as the reference implementation).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graphs.graph import Node


class DisjointSet:
    """Union-find with path compression and union by rank."""

    def __init__(self, nodes: Iterable[Node] = ()) -> None:
        self._parent: dict[Node, Node] = {}
        self._rank: dict[Node, int] = {}
        self._size: dict[Node, int] = {}
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, node: Node) -> bool:
        return node in self._parent

    def add(self, node: Node) -> None:
        """Register ``node`` as its own singleton set (no-op if present)."""
        if node not in self._parent:
            self._parent[node] = node
            self._rank[node] = 0
            self._size[node] = 1

    def find(self, node: Node) -> Node:
        """Return the representative of ``node``'s set (KeyError if absent).

        Iterative two-pass path compression: walk up to the root, then
        point every traversed node directly at it.
        """
        parent = self._parent
        if node not in parent:
            raise KeyError(f"node {node!r} not in disjoint set")
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def union(self, u: Node, v: Node) -> Node:
        """Merge the sets of ``u`` and ``v`` (adding them as needed).

        Returns the representative of the merged set.  Union by rank keeps
        the forest depth logarithmic before compression flattens it.
        """
        self.add(u)
        self.add(v)
        root_u, root_v = self.find(u), self.find(v)
        if root_u == root_v:
            return root_u
        if self._rank[root_u] < self._rank[root_v]:
            root_u, root_v = root_v, root_u
        self._parent[root_v] = root_u
        self._size[root_u] += self._size[root_v]
        if self._rank[root_u] == self._rank[root_v]:
            self._rank[root_u] += 1
        return root_u

    def connected(self, u: Node, v: Node) -> bool:
        """True when both nodes are present and share a set."""
        if u not in self._parent or v not in self._parent:
            return False
        return self.find(u) == self.find(v)

    def component_size(self, node: Node) -> int:
        """Size of the set containing ``node``."""
        return self._size[self.find(node)]

    def components(self) -> list[set[Node]]:
        """All sets, ordered by decreasing size then smallest member repr.

        The ordering matches :func:`repro.graphs.components.connected_components`
        exactly, so the two implementations are drop-in interchangeable.
        """
        by_root: dict[Node, set[Node]] = {}
        for node in self._parent:
            by_root.setdefault(self.find(node), set()).add(node)
        components = list(by_root.values())  # repro-lint: disable=unordered-iteration -- sorted on the next line
        components.sort(key=lambda comp: (-len(comp), min(repr(n) for n in comp)))
        return components


def union_find_components(
    edges: Iterable[tuple[Node, Node]], nodes: Iterable[Node] = ()
) -> list[set[Node]]:
    """Connected components of an edge list via union-find.

    ``nodes`` adds isolated nodes (no incident edge) as singleton sets.
    Ordering matches the BFS implementation: decreasing size, then the
    smallest member repr.
    """
    dsu = DisjointSet(nodes)
    for u, v in edges:
        dsu.union(u, v)
    return dsu.components()
