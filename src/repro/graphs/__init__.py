"""Graph substrate used by the GraLMatch graph clean-up.

The paper relies on three graph primitives over the *match graph* (nodes are
records, edges are positively predicted pairwise matches):

* connected components — the transitively matched groups,
* minimum edge cuts — small sets of edges whose removal disconnects a
  component (Algorithm 1, first phase),
* edge betweenness centrality — Brandes' algorithm (Algorithm 1, second
  phase).

Everything here is implemented from scratch on top of a small adjacency-list
:class:`Graph`; the test-suite cross-checks the results against networkx.
"""

from repro.graphs.graph import Graph
from repro.graphs.components import (
    bfs_connected_components,
    connected_components,
    component_of,
    largest_component,
)
from repro.graphs.union_find import DisjointSet, union_find_components
from repro.graphs.betweenness import edge_betweenness_centrality
from repro.graphs.maxflow import max_flow, minimum_st_edge_cut
from repro.graphs.mincut import minimum_edge_cut, stoer_wagner_min_cut
from repro.graphs.validation import is_complete, is_connected, density

__all__ = [
    "Graph",
    "DisjointSet",
    "union_find_components",
    "bfs_connected_components",
    "connected_components",
    "component_of",
    "largest_component",
    "edge_betweenness_centrality",
    "max_flow",
    "minimum_st_edge_cut",
    "minimum_edge_cut",
    "stoer_wagner_min_cut",
    "is_complete",
    "is_connected",
    "density",
]
