"""Small structural predicates used across the clean-up and the metrics."""

from __future__ import annotations

from repro.graphs.components import connected_components
from repro.graphs.graph import Graph


def is_connected(graph: Graph) -> bool:
    """True when the graph has at most one connected component.

    The empty graph and single-node graphs are considered connected, which
    matches the convention used by the group-matching metrics (a singleton
    record group is a valid, trivially complete group).
    """
    if graph.num_nodes <= 1:
        return True
    return len(connected_components(graph)) == 1


def is_complete(graph: Graph) -> bool:
    """True when every pair of nodes is joined by an edge."""
    n = graph.num_nodes
    expected_edges = n * (n - 1) // 2
    return graph.num_edges == expected_edges


def density(graph: Graph) -> float:
    """Edge density in [0, 1]; graphs with fewer than two nodes have density 0."""
    n = graph.num_nodes
    if n < 2:
        return 0.0
    return graph.num_edges / (n * (n - 1) / 2)
