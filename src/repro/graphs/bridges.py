"""Bridge and articulation-point detection (Tarjan's algorithm, iterative).

A *bridge* is an edge whose removal disconnects its component.  False
positive pairwise predictions frequently are bridges (a single spurious edge
connecting two otherwise unrelated record groups), which makes bridge
removal a natural, cheaper alternative to the Minimum Edge Cut phase of
Algorithm 1.  The clean-up variant in
:mod:`repro.core.cleanup_variants` builds on this module, and an ablation
benchmark compares it against the paper's algorithm.
"""

from __future__ import annotations

from repro.graphs.graph import Edge, Graph, Node, canonical_edge


def bridges(graph: Graph) -> set[Edge]:
    """Return all bridge edges of ``graph``.

    Iterative Tarjan low-link computation (no recursion, so the huge
    connected components the clean-up deals with cannot overflow the stack).
    """
    discovery: dict[Node, int] = {}
    low: dict[Node, int] = {}
    parent: dict[Node, Node | None] = {}
    result: set[Edge] = set()
    counter = 0

    for root in graph.nodes():
        if root in discovery:
            continue
        parent[root] = None
        stack: list[tuple[Node, iter]] = [(root, iter(sorted(graph.neighbors(root), key=repr)))]
        discovery[root] = low[root] = counter
        counter += 1

        while stack:
            node, neighbours = stack[-1]
            advanced = False
            for neighbour in neighbours:
                if neighbour not in discovery:
                    parent[neighbour] = node
                    discovery[neighbour] = low[neighbour] = counter
                    counter += 1
                    stack.append(
                        (neighbour, iter(sorted(graph.neighbors(neighbour), key=repr)))
                    )
                    advanced = True
                    break
                if neighbour != parent[node]:
                    low[node] = min(low[node], discovery[neighbour])
            if advanced:
                continue
            stack.pop()
            if stack:
                parent_node = stack[-1][0]
                low[parent_node] = min(low[parent_node], low[node])
                if low[node] > discovery[parent_node]:
                    result.add(canonical_edge(parent_node, node))
    return result


def articulation_points(graph: Graph) -> set[Node]:
    """Return all articulation points (cut vertices) of ``graph``.

    Computed with the same low-link values; a non-root node is an
    articulation point when one of its children cannot reach above it, a
    root when it has two or more DFS children.
    """
    discovery: dict[Node, int] = {}
    low: dict[Node, int] = {}
    parent: dict[Node, Node | None] = {}
    children: dict[Node, int] = {}
    result: set[Node] = set()
    counter = 0

    for root in graph.nodes():
        if root in discovery:
            continue
        parent[root] = None
        children[root] = 0
        stack: list[tuple[Node, iter]] = [(root, iter(sorted(graph.neighbors(root), key=repr)))]
        discovery[root] = low[root] = counter
        counter += 1

        while stack:
            node, neighbours = stack[-1]
            advanced = False
            for neighbour in neighbours:
                if neighbour not in discovery:
                    parent[neighbour] = node
                    children[node] = children.get(node, 0) + 1
                    children.setdefault(neighbour, 0)
                    discovery[neighbour] = low[neighbour] = counter
                    counter += 1
                    stack.append(
                        (neighbour, iter(sorted(graph.neighbors(neighbour), key=repr)))
                    )
                    advanced = True
                    break
                if neighbour != parent[node]:
                    low[node] = min(low[node], discovery[neighbour])
            if advanced:
                continue
            stack.pop()
            if stack:
                parent_node = stack[-1][0]
                low[parent_node] = min(low[parent_node], low[node])
                if parent[parent_node] is not None and low[node] >= discovery[parent_node]:
                    result.add(parent_node)
        if children.get(root, 0) >= 2:
            result.add(root)
    return result
