"""A small undirected graph with adjacency-set storage.

The match graphs handled by GraLMatch are simple undirected graphs whose
nodes are record identifiers (any hashable) and whose edges are predicted
matches.  We only need a handful of operations — add/remove edges, iterate
neighbours, take subgraphs — so a purpose-built class keeps the rest of the
code independent from networkx and easy to reason about.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any


Node = Hashable
Edge = tuple[Node, Node]


def canonical_edge(u: Node, v: Node) -> Edge:
    """Return the canonical (sorted) representation of an undirected edge.

    Nodes may be of mixed types, so ordering falls back to the repr when the
    natural comparison fails.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


def sorted_nodes(nodes: Iterable[Node]) -> list[Node]:
    """Sort nodes naturally, falling back to repr ordering for mixed types.

    The graph algorithms iterate neighbours and edges through this helper so
    their traversal order — and therefore every tie-break — is independent
    of set/dict hash order (``PYTHONHASHSEED``).
    """
    items = list(nodes)
    try:
        return sorted(items)  # type: ignore[type-var]
    except TypeError:
        return sorted(items, key=repr)


def sorted_edges(edges: Iterable[Edge]) -> list[Edge]:
    """Sort edges with the same mixed-type fallback as :func:`sorted_nodes`."""
    items = list(edges)
    try:
        return sorted(items)  # type: ignore[type-var]
    except TypeError:
        return sorted(items, key=lambda edge: (repr(edge[0]), repr(edge[1])))


class Graph:
    """Simple undirected graph (no self-loops, no parallel edges).

    Nodes can carry an attribute dictionary; edges can carry an attribute
    dictionary as well (used e.g. to remember which blocking produced a
    candidate pair, which the pre-cleanup step needs).
    """

    def __init__(self, edges: Iterable[Edge] | None = None) -> None:
        self._adj: dict[Node, set[Node]] = {}
        self._node_attrs: dict[Node, dict[str, Any]] = {}
        self._edge_attrs: dict[Edge, dict[str, Any]] = {}
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # -- nodes ------------------------------------------------------------

    def add_node(self, node: Node, **attrs: Any) -> None:
        """Add ``node`` (a no-op if already present), merging attributes."""
        if node not in self._adj:
            self._adj[node] = set()
        if attrs:
            self._node_attrs.setdefault(node, {}).update(attrs)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._adj:
            raise KeyError(f"node {node!r} not in graph")
        for neighbour in list(self._adj[node]):
            self.remove_edge(node, neighbour)
        del self._adj[node]
        self._node_attrs.pop(node, None)

    def has_node(self, node: Node) -> bool:
        return node in self._adj

    def nodes(self) -> list[Node]:
        return list(self._adj)

    def node_attrs(self, node: Node) -> dict[str, Any]:
        if node not in self._adj:
            raise KeyError(f"node {node!r} not in graph")
        return self._node_attrs.setdefault(node, {})

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    # -- edges ------------------------------------------------------------

    def add_edge(self, u: Node, v: Node, **attrs: Any) -> None:
        """Add the undirected edge ``(u, v)``; self-loops are rejected."""
        if u == v:
            raise ValueError(f"self-loop on node {u!r} is not allowed")
        self.add_node(u)
        self.add_node(v)
        self._adj[u].add(v)
        self._adj[v].add(u)
        if attrs:
            self._edge_attrs.setdefault(canonical_edge(u, v), {}).update(attrs)

    def remove_edge(self, u: Node, v: Node) -> None:
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._edge_attrs.pop(canonical_edge(u, v), None)

    def remove_edges(self, edges: Iterable[Edge]) -> None:
        """Remove every edge in ``edges``; missing edges are ignored."""
        for u, v in edges:
            if self.has_edge(u, v):
                self.remove_edge(u, v)

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adj and v in self._adj[u]

    def edges(self) -> list[Edge]:
        """Return every edge once, in canonical orientation, sorted.

        Sorting makes every consumer's iteration order independent of set
        hash order, which is what keeps the clean-up's tie-breaking stable
        across ``PYTHONHASHSEED`` values.
        """
        seen: set[Edge] = set()
        for u, neighbours in self._adj.items():  # repro-lint: disable=unordered-iteration -- collected into a set and sorted below
            for v in neighbours:
                seen.add(canonical_edge(u, v))
        return sorted_edges(seen)

    def edge_attrs(self, u: Node, v: Node) -> dict[str, Any]:
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        return self._edge_attrs.setdefault(canonical_edge(u, v), {})

    @property
    def num_edges(self) -> int:
        return sum(len(neigh) for neigh in self._adj.values()) // 2  # repro-lint: disable=unordered-iteration -- integer count; order-free

    # -- traversal helpers --------------------------------------------------

    def neighbors(self, node: Node) -> set[Node]:
        if node not in self._adj:
            raise KeyError(f"node {node!r} not in graph")
        return set(self._adj[node])

    def sorted_neighbors(self, node: Node) -> list[Node]:
        """Neighbours of ``node`` in sorted order (hash-seed independent)."""
        if node not in self._adj:
            raise KeyError(f"node {node!r} not in graph")
        return sorted_nodes(self._adj[node])

    def degree(self, node: Node) -> int:
        if node not in self._adj:
            raise KeyError(f"node {node!r} not in graph")
        return len(self._adj[node])

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(nodes={self.num_nodes}, edges={self.num_edges})"

    # -- derived graphs -----------------------------------------------------

    def copy(self) -> "Graph":
        new = Graph()
        for node in self._adj:
            new.add_node(node, **self._node_attrs.get(node, {}))
        for u, v in self.edges():
            new.add_edge(u, v, **self._edge_attrs.get(canonical_edge(u, v), {}))
        return new

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Return the induced subgraph on ``nodes`` (attributes are copied).

        Nodes and edges are inserted in sorted order so the subgraph's
        insertion order (and with it every downstream traversal) does not
        depend on the hash order of the ``nodes`` set.
        """
        keep = set(nodes)
        ordered = sorted_nodes(keep)
        sub = Graph()
        for node in ordered:
            if node in self._adj:
                sub.add_node(node, **self._node_attrs.get(node, {}))
        for node in ordered:
            if node not in self._adj:
                continue
            for neighbour in sorted_nodes(self._adj[node]):
                if neighbour in keep and not sub.has_edge(node, neighbour):
                    attrs = self._edge_attrs.get(canonical_edge(node, neighbour), {})
                    sub.add_edge(node, neighbour, **attrs)
        return sub

    def to_networkx(self):  # pragma: no cover - convenience bridge
        """Convert to a :class:`networkx.Graph` (used for visual inspection)."""
        import networkx as nx

        nxg = nx.Graph()
        for node in self._adj:
            nxg.add_node(node, **self._node_attrs.get(node, {}))
        for u, v in self.edges():
            nxg.add_edge(u, v, **self._edge_attrs.get(canonical_edge(u, v), {}))
        return nxg

    @classmethod
    def from_edges(cls, edges: Iterable[Edge]) -> "Graph":
        return cls(edges)

    @classmethod
    def complete(cls, nodes: Iterable[Node]) -> "Graph":
        """Build the complete graph over ``nodes``."""
        node_list = list(nodes)
        graph = cls()
        for node in node_list:
            graph.add_node(node)
        for i, u in enumerate(node_list):
            for v in node_list[i + 1:]:
                graph.add_edge(u, v)
        return graph
