"""GraLMatch reproduction: entity group matching with graphs and language models.

This package reproduces the system described in *GraLMatch: Matching Groups of
Entities with Graphs and Language Models* (EDBT 2025).  The public API is
re-exported here; see ``DESIGN.md`` for the full system inventory and
``EXPERIMENTS.md`` for the reproduced tables and figures.

High-level entry points
-----------------------
* :mod:`repro.api` — the declarative facade: ``load_spec`` /
  ``build_pipeline`` / ``run_experiment`` over JSON/TOML experiment specs
  (:mod:`repro.specs`) and named component registries
  (:mod:`repro.registry`).
* :class:`repro.core.pipeline.EntityGroupMatchingPipeline` — the end-to-end
  workflow of Figure 1 (blocking → pairwise matching → graph clean-up →
  entity groups), an ordered sequence of named stages.
* :func:`repro.core.cleanup.gralmatch_cleanup` — Algorithm 1.
* :mod:`repro.datagen` — synthetic multi-source companies / securities / WDC
  benchmark generators.
* :mod:`repro.matching` — pairwise matchers (attention-based DistilBERT
  stand-in, DITTO-style serialization variants, feature-based logistic model,
  identifier heuristic).
* :mod:`repro.evaluation` — experiment harness that regenerates the paper's
  tables.

The heavyweight subpackages are imported lazily (PEP 562) so that, for
example, the graph substrate can be used without paying for numpy model
initialisation.
"""

from __future__ import annotations

import logging
from typing import Any

__version__ = "1.0.0"

# Library logging hygiene: everything under the "repro" namespace is silent
# until an application (or the CLI's --verbose flag) attaches a handler.
logging.getLogger("repro").addHandler(logging.NullHandler())

# Public name -> (module, attribute) for lazy resolution.
_LAZY_EXPORTS: dict[str, tuple[str, str]] = {
    # The declarative facade (specs + registries + high-level entry points).
    "load_spec": ("repro.api", "load_spec"),
    "build_pipeline": ("repro.api", "build_pipeline"),
    "run_experiment": ("repro.api", "run_experiment"),
    "open_state": ("repro.api", "open_state"),
    "ingest": ("repro.api", "ingest"),
    "IncrementalMatcher": ("repro.incremental", "IncrementalMatcher"),
    "IngestReport": ("repro.incremental", "IngestReport"),
    "MatchState": ("repro.incremental", "MatchState"),
    "MatchStateError": ("repro.incremental", "MatchStateError"),
    "ExperimentSpec": ("repro.specs", "ExperimentSpec"),
    "PipelineSpec": ("repro.specs", "PipelineSpec"),
    "ComponentSpec": ("repro.specs", "ComponentSpec"),
    "SpecValidationError": ("repro.specs", "SpecValidationError"),
    "register_blocking": ("repro.registry", "register_blocking"),
    "register_matcher": ("repro.registry", "register_matcher"),
    "register_cleanup": ("repro.registry", "register_cleanup"),
    "CleanupConfig": ("repro.core.cleanup", "CleanupConfig"),
    "gralmatch_cleanup": ("repro.core.cleanup", "gralmatch_cleanup"),
    "EntityGroups": ("repro.core.groups", "EntityGroups"),
    "PairwiseScores": ("repro.core.metrics", "PairwiseScores"),
    "GroupMatchingScores": ("repro.core.metrics", "GroupMatchingScores"),
    "pairwise_scores": ("repro.core.metrics", "pairwise_scores"),
    "group_matching_scores": ("repro.core.metrics", "group_matching_scores"),
    "cluster_purity": ("repro.core.metrics", "cluster_purity"),
    "EntityGroupMatchingPipeline": ("repro.core.pipeline", "EntityGroupMatchingPipeline"),
    "PipelineResult": ("repro.core.pipeline", "PipelineResult"),
    "transitive_closure_edges": ("repro.core.transitive", "transitive_closure_edges"),
    "transitive_matches": ("repro.core.transitive", "transitive_matches"),
}

__all__ = ["__version__", *sorted(_LAZY_EXPORTS)]


def __getattr__(name: str) -> Any:
    """Resolve public names lazily from their defining module."""
    if name in _LAZY_EXPORTS:
        from importlib import import_module

        module_name, attribute = _LAZY_EXPORTS[name]
        value = getattr(import_module(module_name), attribute)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
