"""Batched string-similarity kernels over deduplicated pair lists.

The columnar matching hot path (:mod:`repro.matching.features`) reduces a
candidate batch to its *distinct* string pairs and scores them all at once.
These kernels are the array counterparts of the scalar functions in
:mod:`repro.text.similarity`: each takes parallel sequences of left/right
strings and returns one float64 value per pair.

The contract — pinned by a hypothesis suite
(``tests/text/test_batch_similarity.py``) — is **bitwise equality** with
the scalar functions.  That holds by construction:

* Levenshtein, LCS and the Jaro match/transposition counts are integer
  dynamic programs; any correct evaluation order produces the same exact
  integers, and every path below computes those integers exactly.
* The final float64 arithmetic replays the scalar expressions operation for
  operation (same divisions, same left-associated additions), and IEEE-754
  ops on equal inputs are deterministic.

Each kernel has two paths selected by batch width.  When every string fits
``_BIT_WIDTH`` (63) codepoints, one uint64 per row carries a whole DP
column: Levenshtein runs Myers' bit-vector algorithm (vertical delta
vectors, the diagonal via a hardware carry chain, the distance read off
the pattern's top bit) and Jaro's greedy matching runs bit-parallel (the
match window is a contiguous bit span, "first unmatched window position
with this character" is the lowest set candidate bit).  Both consume a
precomputed equality-bitmask table; when callers pass interned string ids
(equal ids ⇔ identical strings — the
:class:`~repro.matching.profiles.ProfileStore` invariant), the table is
built once per *distinct* pattern × alphabet character instead of per row.
Wider batches fall back to exact array DPs: Levenshtein trims the common
prefix/suffix, puts the shorter core on the sequential axis and runs a
tilted int32 DP; Jaro replays the greedy matching on boolean matrices in
scalar orientation.  LCS puts the shorter string on the sequential axis
(symmetric by definition).  All sequential loops sort pairs by
sequential-axis length so each step runs on a dense prefix of still-active
rows instead of masking the full batch.

Each ``*_packed`` kernel consumes pre-packed codepoint matrices (see
:func:`pack_codepoints`), so a caller holding interned strings — the
columnar :class:`~repro.matching.profiles.ProfileStore` — can pack each
distinct string once per batch instead of once per pair.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

#: Distinct out-of-range fill codes for left/right padding: real codepoints
#: are non-negative, and the two sides must never compare equal on padding.
PAD_LEFT = -1
PAD_RIGHT = -2


def pack_codepoints(
    strings: Sequence[str], width: int | None = None, fill: int = PAD_LEFT
) -> tuple[np.ndarray, np.ndarray]:
    """Pack strings into an ``(n, width)`` int32 codepoint matrix + lengths.

    Padding uses ``fill`` (negative, so it never equals a real codepoint).
    ``width`` defaults to the longest string; ``width=0`` still yields a
    well-formed ``(n, 1)`` matrix so downstream reductions stay simple.
    """
    lengths = np.fromiter(
        (len(s) for s in strings), dtype=np.int64, count=len(strings)
    )
    if width is None:
        width = int(lengths.max()) if len(strings) else 0
    width = max(width, 1)
    codes = np.full((len(strings), width), fill, dtype=np.int32)
    for i, s in enumerate(strings):
        if s:
            codes[i, : len(s)] = np.frombuffer(
                s.encode("utf-32-le"), dtype=np.uint32
            ).astype(np.int32)
    return codes, lengths


def _pack_pairs(
    lefts: Sequence[str], rights: Sequence[str]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    if len(lefts) != len(rights):
        raise ValueError("lefts and rights must have the same length")
    a_codes, a_lengths = pack_codepoints(lefts, fill=PAD_LEFT)
    b_codes, b_lengths = pack_codepoints(rights, fill=PAD_RIGHT)
    return a_codes, a_lengths, b_codes, b_lengths


def _equal_and_empty(
    lefts: Sequence[str], rights: Sequence[str]
) -> tuple[np.ndarray, np.ndarray]:
    n = len(lefts)
    equal = np.fromiter(
        (a == b for a, b in zip(lefts, rights)), dtype=np.bool_, count=n
    )
    either_empty = np.fromiter(
        (not a or not b for a, b in zip(lefts, rights)), dtype=np.bool_, count=n
    )
    return equal, either_empty


def _common_prefix_lengths(a_codes: np.ndarray, b_codes: np.ndarray) -> np.ndarray:
    """Per-row count of leading equal codepoints.

    The distinct pad codes guarantee padding never compares equal, so the
    cumulative product stops at ``min(len(a), len(b))`` automatically.
    """
    m = min(a_codes.shape[1], b_codes.shape[1])
    equal = a_codes[:, :m] == b_codes[:, :m]
    return np.cumprod(equal, axis=1).sum(axis=1).astype(np.int64)


def _reverse_codes(codes: np.ndarray, lengths: np.ndarray, fill: int) -> np.ndarray:
    """Each row's codepoints reversed in place of its own length."""
    width = codes.shape[1]
    positions = np.arange(width, dtype=np.int64)
    columns = lengths[:, None] - 1 - positions[None, :]
    valid = columns >= 0
    taken = np.take_along_axis(codes, np.maximum(columns, 0), axis=1)
    return np.where(valid, taken, fill).astype(np.int32)


def _gather_cores(
    codes: np.ndarray,
    starts: np.ndarray,
    core_lengths: np.ndarray,
    width: int,
    fill: int,
) -> np.ndarray:
    """Packed matrix of per-row substrings ``codes[r, starts[r]:starts[r]+len]``."""
    positions = np.arange(width, dtype=np.int64)
    columns = starts[:, None] + positions[None, :]
    valid = positions[None, :] < core_lengths[:, None]
    taken = np.take_along_axis(
        codes, np.minimum(columns, codes.shape[1] - 1), axis=1
    )
    return np.where(valid, taken, fill).astype(np.int32)


def _by_descending(lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(permutation sorting rows by length descending, the sorted negation).

    Sorting lets every DP iteration ``i`` run on the dense row prefix still
    active (``searchsorted`` on the negated lengths) instead of boolean
    masking the whole batch.
    """
    order = np.argsort(-lengths, kind="stable")
    return order, -lengths[order]


#: Widest string a 64-bit position mask can cover.  Wider inputs take the
#: array-DP fallbacks; both paths compute the same exact integers.
_BIT_WIDTH = 63


def _pack_bit_rows(equal: np.ndarray) -> np.ndarray:
    """Collapse the trailing bool axis of ``equal`` into uint64 bitmasks."""
    packed = np.packbits(equal, axis=-1, bitorder="little")
    byte_width = packed.shape[-1]
    padded = np.zeros(packed.shape[:-1] + (8,), dtype=np.uint8)
    padded[..., :byte_width] = packed
    return padded.view("<u8").reshape(packed.shape[:-1])


def _equality_bitmasks(
    pattern_codes: np.ndarray,
    text_codes: np.ndarray,
    pattern_ids: np.ndarray | None = None,
    text_ids: np.ndarray | None = None,
) -> np.ndarray:
    """``table[r, i]`` = uint64 mask of pattern positions matching text char i.

    One batched comparison + bit-pack up front replaces a per-iteration
    ``(rows, width)`` comparison in the bit-parallel kernels — the DP loops
    then run entirely on thin per-row uint64 vectors.

    The mask depends only on (pattern string, text character).  When the
    caller can identify each row's string by an id (the columnar store's
    interned ids), the table is built on distinct patterns × the distinct
    text alphabet and gathered back per pair — deduplicated batches repeat
    both heavily.
    """
    rows, text_width = text_codes.shape
    if pattern_ids is None or text_ids is None:
        equal = pattern_codes[:, None, :] == text_codes[:, :, None]
        return _pack_bit_rows(equal)
    _, pattern_first, pattern_index = np.unique(
        pattern_ids, return_index=True, return_inverse=True
    )
    _, text_first, text_index = np.unique(
        text_ids, return_index=True, return_inverse=True
    )
    distinct_patterns = pattern_codes[pattern_first]
    distinct_text = text_codes[text_first]
    alphabet, char_index = np.unique(distinct_text, return_inverse=True)
    char_index = char_index.reshape(distinct_text.shape)
    masks = _pack_bit_rows(
        distinct_patterns[:, None, :] == alphabet[None, :, None]
    )
    return masks[pattern_index.reshape(-1)[:, None], char_index[text_index]]


# -- Levenshtein -------------------------------------------------------------


def levenshtein_distance_packed(
    a_codes: np.ndarray,
    a_lengths: np.ndarray,
    b_codes: np.ndarray,
    b_lengths: np.ndarray,
    *,
    a_ids: np.ndarray | None = None,
    b_ids: np.ndarray | None = None,
) -> np.ndarray:
    """Edit distances of packed string pairs (int64, exact).

    Strings that fit a 64-bit position mask take Myers' bit-vector DP
    (:func:`_levenshtein_bits`); wider ones take the array DP
    (:func:`_levenshtein_wide`) with the scalar function's work reductions
    (common affixes trimmed, shorter core on the sequential axis — licensed
    because the distance is the same exact integer either way).  Optional
    ``a_ids``/``b_ids`` identify each row's string for exact dedup of the
    bit path's equality table.
    """
    n = len(a_lengths)
    out = np.zeros(n, dtype=np.int64)
    if n == 0:
        return out

    if a_codes.shape[1] <= _BIT_WIDTH:
        one_empty = (a_lengths == 0) | (b_lengths == 0)
        out[one_empty] = np.maximum(a_lengths, b_lengths)[one_empty]
        todo = np.nonzero(~one_empty)[0]
        if not todo.size:
            return out
        order, sort_keys = _by_descending(b_lengths[todo])
        rows = todo[order]
        distances = _levenshtein_bits(
            a_codes[rows],
            a_lengths[rows],
            b_codes[rows],
            b_lengths[rows],
            sort_keys,
            pattern_ids=None if a_ids is None else a_ids[rows],
            text_ids=None if b_ids is None else b_ids[rows],
        )
        unsorted = np.empty(todo.size, dtype=np.int64)
        unsorted[order] = distances
        out[todo] = unsorted
        return out

    prefix = _common_prefix_lengths(a_codes, b_codes)
    limit = np.minimum(a_lengths, b_lengths)
    suffix = _common_prefix_lengths(
        _reverse_codes(a_codes, a_lengths, PAD_LEFT),
        _reverse_codes(b_codes, b_lengths, PAD_RIGHT),
    )
    suffix = np.minimum(suffix, limit - prefix)
    core_a = a_lengths - prefix - suffix
    core_b = b_lengths - prefix - suffix

    one_empty = (core_a == 0) | (core_b == 0)
    # When either core is empty the distance is the other core's length
    # (for two empty cores: 0).
    out[one_empty] = np.maximum(core_a, core_b)[one_empty]
    todo = np.nonzero(~one_empty)[0]
    if not todo.size:
        return out

    core_a = core_a[todo]
    core_b = core_b[todo]
    starts = prefix[todo]
    # Distance is symmetric: keep the shorter core on the sequential axis.
    swap = core_a > core_b
    outer_lengths = np.where(swap, core_b, core_a)
    inner_lengths = np.where(swap, core_a, core_b)
    width = int(inner_lengths.max())
    a_core = _gather_cores(a_codes[todo], starts, core_a, width, PAD_LEFT)
    b_core = _gather_cores(b_codes[todo], starts, core_b, width, PAD_RIGHT)
    outer_codes = np.where(swap[:, None], b_core, a_core)
    inner_codes = np.where(swap[:, None], a_core, b_core)

    order, sort_keys = _by_descending(outer_lengths)
    distances = _levenshtein_wide(
        inner_codes[order], inner_lengths[order], outer_codes[order],
        outer_lengths, sort_keys, width,
    )
    unsorted = np.empty(len(todo), dtype=np.int64)
    unsorted[order] = distances
    out[todo] = unsorted
    return out


def _levenshtein_bits(
    pattern_codes: np.ndarray,
    pattern_lengths: np.ndarray,
    text_codes: np.ndarray,
    text_lengths: np.ndarray,
    sort_keys: np.ndarray,
    pattern_ids: np.ndarray | None = None,
    text_ids: np.ndarray | None = None,
) -> np.ndarray:
    """Myers' bit-vector edit distance, batched (rows sorted by text length).

    The classic bit-parallel formulation: the DP column is held as two
    uint64 delta vectors (``vertical_pos``/``vertical_neg``) per pair, the
    in-column carry chain is performed by hardware addition, and the
    distance is the running score at the pattern's top bit.  Exact integer
    edit distance — identical to the array DP — with each step costing a
    handful of thin per-row uint64 ops instead of ``(rows, width)`` array
    passes.  Bits at and above each pattern's length are garbage but
    harmless: carries only propagate upward and nothing shifts down past
    the scored top bit.
    """
    n = len(pattern_lengths)
    table = _equality_bitmasks(pattern_codes, text_codes, pattern_ids, text_ids)
    one = np.uint64(1)
    lengths64 = pattern_lengths.astype(np.uint64)
    top_bit = one << (lengths64 - one)
    vertical_pos = (one << lengths64) - one
    vertical_neg = np.zeros(n, dtype=np.uint64)
    score = pattern_lengths.astype(np.int64).copy()
    for i in range(int(text_lengths[0]) if n else 0):
        active = np.searchsorted(sort_keys, -(i + 1), side="right")
        vp = vertical_pos[:active]
        vn = vertical_neg[:active]
        matches = table[:active, i] | vn
        diagonal = (((matches & vp) + vp) ^ vp) | matches
        horizontal_pos = vn | ~(diagonal | vp)
        horizontal_neg = diagonal & vp
        score[:active] += (horizontal_pos & top_bit[:active]) != 0
        score[:active] -= (horizontal_neg & top_bit[:active]) != 0
        shifted = (horizontal_pos << one) | one
        vertical_pos[:active] = (horizontal_neg << one) | ~(diagonal | shifted)
        vertical_neg[:active] = shifted & diagonal
    return score


def _levenshtein_wide(
    inner_codes: np.ndarray,
    pattern_lengths: np.ndarray,
    outer_codes: np.ndarray,
    outer_lengths: np.ndarray,
    sort_keys: np.ndarray,
    width: int,
) -> np.ndarray:
    """Array-DP fallback for strings too wide for 64-bit masks.

    DP in "tilted" coordinates q[j] = p[j] - j, which folds the column
    offset out of the loop: tmp'[j] = min(q[j] + 1, q[j-1] - equal_j) and
    new q[j] = min(running_min(tmp'), i).  Same exact integers as the
    scalar rolling row; int32 is ample (distances <= width).
    """
    n = len(pattern_lengths)
    tilted = np.zeros((n, width + 1), dtype=np.int32)
    insert = np.empty((n, width), dtype=np.int32)
    substitute = np.empty_like(insert)
    for i in range(1, int(outer_lengths.max()) + 1):
        active = np.searchsorted(sort_keys, -i, side="right")
        rows = tilted[:active]
        equal = inner_codes[:active] == outer_codes[:active, i - 1][:, None]
        up = insert[:active]
        diagonal = substitute[:active]
        np.add(rows[:, 1:], 1, out=up)
        np.subtract(rows[:, :-1], equal, out=diagonal)
        np.minimum(up, diagonal, out=up)
        np.minimum.accumulate(up, axis=1, out=up)
        np.minimum(up, i, out=rows[:, 1:])
        rows[:, 0] = i
    return tilted[np.arange(n), pattern_lengths].astype(np.int64) + pattern_lengths


def levenshtein_distance_batch(
    lefts: Sequence[str], rights: Sequence[str]
) -> np.ndarray:
    """Edit distances for parallel string sequences (int64, exact)."""
    if len(lefts) != len(rights):
        raise ValueError("lefts and rights must have the same length")
    if not len(lefts):
        return np.zeros(0, dtype=np.int64)
    return levenshtein_distance_packed(*_pack_pairs(lefts, rights))


def levenshtein_similarity_packed(
    a_codes: np.ndarray,
    a_lengths: np.ndarray,
    b_codes: np.ndarray,
    b_lengths: np.ndarray,
    equal: np.ndarray,
    *,
    a_ids: np.ndarray | None = None,
    b_ids: np.ndarray | None = None,
) -> np.ndarray:
    """Packed :func:`~repro.text.similarity.levenshtein_similarity`.

    ``equal`` marks pairs of identical strings (callers with interned ids
    know this without comparing characters).
    """
    out = np.empty(len(a_lengths), dtype=np.float64)
    out[equal] = 1.0
    todo = np.nonzero(~equal)[0]
    if todo.size:
        distances = levenshtein_distance_packed(
            a_codes[todo],
            a_lengths[todo],
            b_codes[todo],
            b_lengths[todo],
            a_ids=None if a_ids is None else a_ids[todo],
            b_ids=None if b_ids is None else b_ids[todo],
        )
        longest = np.maximum(a_lengths[todo], b_lengths[todo])
        # Same ops as the scalar `1.0 - distance / longest`.
        out[todo] = 1.0 - distances.astype(np.float64) / longest.astype(np.float64)
    return out


def levenshtein_similarity_batch(
    lefts: Sequence[str], rights: Sequence[str]
) -> np.ndarray:
    """Batched :func:`~repro.text.similarity.levenshtein_similarity`."""
    if not len(lefts):
        return np.empty(0, dtype=np.float64)
    equal, _ = _equal_and_empty(lefts, rights)
    return levenshtein_similarity_packed(*_pack_pairs(lefts, rights), equal)


# -- longest common substring ------------------------------------------------


def longest_common_substring_packed(
    a_codes: np.ndarray,
    a_lengths: np.ndarray,
    b_codes: np.ndarray,
    b_lengths: np.ndarray,
) -> np.ndarray:
    """Longest common contiguous substring lengths (int64, exact).

    Symmetric by definition, so the shorter string runs on the sequential
    axis; pairs are sorted by that length so each DP step touches only the
    dense prefix of still-active rows.
    """
    n = len(a_lengths)
    best = np.zeros(n, dtype=np.int64)
    if n == 0:
        return best
    swap = a_lengths > b_lengths
    outer_lengths = np.where(swap, b_lengths, a_lengths)
    inner_lengths = np.where(swap, a_lengths, b_lengths)
    width = int(inner_lengths.max()) if n else 0
    if width == 0 or int(outer_lengths.max()) == 0:
        return best
    a_wide = _gather_cores(a_codes, np.zeros(n, dtype=np.int64), a_lengths, width, PAD_LEFT)
    b_wide = _gather_cores(b_codes, np.zeros(n, dtype=np.int64), b_lengths, width, PAD_RIGHT)
    outer_codes = np.where(swap[:, None], b_wide, a_wide)
    inner_codes = np.where(swap[:, None], a_wide, b_wide)

    order, sort_keys = _by_descending(outer_lengths)
    outer_codes = outer_codes[order]
    inner_codes = inner_codes[order]

    previous = np.zeros((n, width + 1), dtype=np.int32)
    current = np.zeros_like(previous)
    best_sorted = np.zeros(n, dtype=np.int32)
    for i in range(1, int(outer_lengths.max()) + 1):
        active = np.searchsorted(sort_keys, -i, side="right")
        equal = inner_codes[:active] == outer_codes[:active, i - 1][:, None]
        # Run lengths extend where the characters match and reset to zero
        # where they do not — the multiply is the branchless `where`.
        runs = current[:active, 1:]
        np.add(previous[:active, :-1], 1, out=runs)
        np.multiply(runs, equal, out=runs)
        np.maximum(
            best_sorted[:active], runs.max(axis=1), out=best_sorted[:active]
        )
        # Rows that just went inactive keep stale DP rows; harmless, since
        # the active prefix only shrinks and `best` is already final.
        previous, current = current, previous
    best[order] = best_sorted.astype(np.int64)
    return best


def longest_common_substring_batch(
    lefts: Sequence[str], rights: Sequence[str]
) -> np.ndarray:
    """Longest common contiguous substring lengths (int64, exact)."""
    if len(lefts) != len(rights):
        raise ValueError("lefts and rights must have the same length")
    if not len(lefts):
        return np.zeros(0, dtype=np.int64)
    return longest_common_substring_packed(*_pack_pairs(lefts, rights))


def longest_common_substring_similarity_packed(
    a_codes: np.ndarray,
    a_lengths: np.ndarray,
    b_codes: np.ndarray,
    b_lengths: np.ndarray,
    equal: np.ndarray,
) -> np.ndarray:
    """Packed :func:`~repro.text.similarity.longest_common_substring_similarity`."""
    out = np.empty(len(a_lengths), dtype=np.float64)
    out[equal] = 1.0
    either_empty = (a_lengths == 0) | (b_lengths == 0)
    out[either_empty & ~equal] = 0.0
    todo = np.nonzero(~equal & ~either_empty)[0]
    if todo.size:
        lcs = longest_common_substring_packed(
            a_codes[todo], a_lengths[todo], b_codes[todo], b_lengths[todo]
        )
        shortest = np.minimum(a_lengths[todo], b_lengths[todo])
        out[todo] = lcs.astype(np.float64) / shortest.astype(np.float64)
    return out


def longest_common_substring_similarity_batch(
    lefts: Sequence[str], rights: Sequence[str]
) -> np.ndarray:
    """Batched :func:`~repro.text.similarity.longest_common_substring_similarity`."""
    if not len(lefts):
        return np.empty(0, dtype=np.float64)
    equal, _ = _equal_and_empty(lefts, rights)
    return longest_common_substring_similarity_packed(
        *_pack_pairs(lefts, rights), equal
    )


# -- Jaro / Jaro-Winkler -----------------------------------------------------


def _jaro_batch_core(
    a_codes: np.ndarray,
    a_lengths: np.ndarray,
    b_codes: np.ndarray,
    b_lengths: np.ndarray,
    a_ids: np.ndarray | None = None,
    b_ids: np.ndarray | None = None,
) -> np.ndarray:
    """Jaro similarity of packed non-equal, non-empty string pairs.

    Replays the scalar greedy matching loop with the ``i`` axis kept
    sequential (the ``b_matched`` state advances exactly as in the scalar
    code: one first-available window match per ``a`` character) and the
    pair axis vectorised.  Unlike the integer kernels the sides are *not*
    reoriented — the scalar function never swaps them — but rows are sorted
    by ``len(a)`` so each step runs on the dense still-active prefix.
    """
    n, b_width = b_codes.shape
    order, sort_keys = _by_descending(a_lengths)
    a_codes = a_codes[order]
    a_lengths_sorted = a_lengths[order]
    b_codes = b_codes[order]
    b_lengths_sorted = b_lengths[order]

    match_window = np.maximum(
        np.maximum(a_lengths_sorted, b_lengths_sorted) // 2 - 1, 0
    )
    b_positions = np.arange(b_width, dtype=np.int64)
    a_matched = np.zeros(a_codes.shape, dtype=np.bool_)
    iterations = int(a_lengths_sorted[0]) if n else 0
    if b_width <= _BIT_WIDTH:
        # Bit-parallel greedy: the window is a contiguous uint64 span, the
        # scalar loop's "first unmatched window position with this
        # character" is the lowest set candidate bit, and claiming it is
        # one OR.  Exactly the scalar matching, one thin op chain per step.
        table = _equality_bitmasks(
            b_codes,
            a_codes,
            None if b_ids is None else b_ids[order],
            None if a_ids is None else a_ids[order],
        )
        one = np.uint64(1)
        b_mask = np.zeros(n, dtype=np.uint64)
        for i in range(iterations):
            active = np.searchsorted(sort_keys, -(i + 1), side="right")
            start = np.maximum(0, i - match_window[:active]).astype(np.uint64)
            end = np.minimum(
                i + match_window[:active] + 1, b_lengths_sorted[:active]
            ).astype(np.uint64)
            window = (one << end) - (one << start)
            candidates = table[:active, i] & window & ~b_mask[:active]
            b_mask[:active] |= candidates & (~candidates + one)
            a_matched[:active, i] = candidates != 0
        b_matched = (b_mask[:, None] >> b_positions.astype(np.uint64)) & one != 0
    else:
        b_matched = np.zeros(b_codes.shape, dtype=np.bool_)
        scratch = np.empty((n, b_width), dtype=np.bool_)
        for i in range(iterations):
            active = np.searchsorted(sort_keys, -(i + 1), side="right")
            start = np.maximum(0, i - match_window[:active])
            end = np.minimum(
                i + match_window[:active] + 1, b_lengths_sorted[:active]
            )
            candidates = scratch[:active]
            np.equal(b_codes[:active], a_codes[:active, i][:, None], out=candidates)
            candidates &= b_positions >= start[:, None]
            candidates &= b_positions < end[:, None]
            np.greater(candidates, b_matched[:active], out=candidates)
            first = candidates.argmax(axis=1)
            rows = np.arange(active)
            hit_rows = rows[candidates[rows, first]]
            b_matched[hit_rows, first[hit_rows]] = True
            a_matched[hit_rows, i] = True

    matches = b_matched.sum(axis=1)
    jaro_sorted = np.zeros(n, dtype=np.float64)
    scored = matches > 0
    jaro = np.zeros(n, dtype=np.float64)
    if not scored.any():
        return jaro

    # Transpositions: compare the matched characters of both sides in
    # order.  Scatter each side's matched codepoints into dense per-pair
    # rows (position = rank among that side's matches), then count
    # rank-wise mismatches — exactly the scalar two-pointer walk.
    max_matches = int(matches.max())
    a_rank = np.cumsum(a_matched, axis=1) - 1
    b_rank = np.cumsum(b_matched, axis=1) - 1
    a_in_order = np.zeros((n, max_matches), dtype=np.int32)
    b_in_order = np.zeros((n, max_matches), dtype=np.int32)
    a_rows, a_cols = np.nonzero(a_matched)
    b_rows, b_cols = np.nonzero(b_matched)
    a_in_order[a_rows, a_rank[a_rows, a_cols]] = a_codes[a_rows, a_cols]
    b_in_order[b_rows, b_rank[b_rows, b_cols]] = b_codes[b_rows, b_cols]
    rank_valid = np.arange(max_matches, dtype=np.int64) < matches[:, None]
    transpositions = ((a_in_order != b_in_order) & rank_valid).sum(axis=1) // 2

    m = matches[scored].astype(np.float64)
    t = transpositions[scored].astype(np.float64)
    la = a_lengths_sorted[scored].astype(np.float64)
    lb = b_lengths_sorted[scored].astype(np.float64)
    # Same left-associated expression as the scalar function.
    jaro_sorted[scored] = (m / la + m / lb + (m - t) / m) / 3.0
    jaro[order] = jaro_sorted
    return jaro


def jaro_winkler_similarity_packed(
    a_codes: np.ndarray,
    a_lengths: np.ndarray,
    b_codes: np.ndarray,
    b_lengths: np.ndarray,
    equal: np.ndarray,
    prefix_weight: float = 0.1,
    *,
    a_ids: np.ndarray | None = None,
    b_ids: np.ndarray | None = None,
) -> np.ndarray:
    """Packed :func:`~repro.text.similarity.jaro_winkler_similarity`."""
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError("prefix_weight must be in [0, 0.25]")
    out = np.empty(len(a_lengths), dtype=np.float64)
    out[equal] = 1.0
    either_empty = (a_lengths == 0) | (b_lengths == 0)
    out[either_empty & ~equal] = 0.0
    todo = np.nonzero(~equal & ~either_empty)[0]
    if todo.size:
        a_sub, b_sub = a_codes[todo], b_codes[todo]
        jaro = _jaro_batch_core(
            a_sub,
            a_lengths[todo],
            b_sub,
            b_lengths[todo],
            None if a_ids is None else a_ids[todo],
            None if b_ids is None else b_ids[todo],
        )
        # Common prefix over the first four characters; the distinct pad
        # codes guarantee padding never compares equal, so the cumulative
        # product stops at min(len(a), len(b)) automatically.
        head = min(4, a_sub.shape[1], b_sub.shape[1])
        prefix = (
            np.cumprod(a_sub[:, :head] == b_sub[:, :head], axis=1).sum(axis=1)
            if head
            else np.zeros(todo.size, dtype=np.int64)
        )
        out[todo] = jaro + prefix.astype(np.float64) * prefix_weight * (1.0 - jaro)
    return out


def jaro_winkler_similarity_batch(
    lefts: Sequence[str], rights: Sequence[str], prefix_weight: float = 0.1
) -> np.ndarray:
    """Batched :func:`~repro.text.similarity.jaro_winkler_similarity`."""
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError("prefix_weight must be in [0, 0.25]")
    if not len(lefts):
        return np.empty(0, dtype=np.float64)
    equal, _ = _equal_and_empty(lefts, rights)
    return jaro_winkler_similarity_packed(
        *_pack_pairs(lefts, rights), equal, prefix_weight=prefix_weight
    )
