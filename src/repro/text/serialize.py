"""Record and record-pair serialisation schemes.

The paper compares two serialisation schemes for feeding record pairs to a
sequence classifier:

* the plain scheme used by the DistilBERT baselines — attribute values
  concatenated in a fixed attribute order, records separated by ``[SEP]``;
* the DITTO scheme — every attribute is wrapped as ``[COL] name [VAL] value``,
  which "increases the amount of tokens required to encode the same value
  information, but adds more structure" (Section 5.2).

Both serialisers enforce a maximum token budget (the 128 / 256 variants of
Table 3), which is exactly the axis on which DITTO (128) degrades in the
paper: the structural tokens crowd out the informative ones.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence

from repro.text.normalize import normalize_text
from repro.text.tokenize import COL_TOKEN, SEP_TOKEN, VAL_TOKEN

PLAIN_SCHEME = "plain"
DITTO_SCHEME = "ditto"

Record = Mapping[str, object]


class PairSerializer(ABC):
    """Serialise a single record or a record pair into a token sequence."""

    def __init__(
        self,
        attributes: Sequence[str],
        max_tokens: int = 128,
    ) -> None:
        if not attributes:
            raise ValueError("at least one attribute is required")
        if max_tokens < 8:
            raise ValueError("max_tokens must be at least 8")
        self.attributes = list(attributes)
        self.max_tokens = max_tokens

    @abstractmethod
    def serialize_record(self, record: Record) -> list[str]:
        """Serialise one record into word tokens (without special framing)."""

    def serialize_pair(self, left: Record, right: Record) -> list[str]:
        """Serialise a record pair as ``left [SEP] right``, within budget.

        The budget is split evenly between the two records (minus the three
        framing tokens added later by the vocabulary encoder: ``[CLS]``,
        the middle ``[SEP]`` and the final ``[SEP]``), mirroring how the
        paper truncates each record to half the sequence length.
        """
        per_record_budget = max(1, (self.max_tokens - 3) // 2)
        left_tokens = self.serialize_record(left)[:per_record_budget]
        right_tokens = self.serialize_record(right)[:per_record_budget]
        return left_tokens + [SEP_TOKEN] + right_tokens

    def serialize_pair_text(self, left: Record, right: Record) -> str:
        """Convenience: the pair serialisation joined into a single string."""
        return " ".join(self.serialize_pair(left, right))

    def _attribute_value(self, record: Record, attribute: str) -> str:
        value = record.get(attribute)
        if value is None:
            return ""
        if isinstance(value, (list, tuple, set, frozenset)):
            return " ".join(str(item) for item in sorted(value, key=str))
        return str(value)


class PlainSerializer(PairSerializer):
    """Concatenate normalised attribute values in attribute order."""

    scheme = PLAIN_SCHEME

    def serialize_record(self, record: Record) -> list[str]:
        tokens: list[str] = []
        for attribute in self.attributes:
            value = self._attribute_value(record, attribute)
            tokens.extend(normalize_text(value).split())
        return tokens


class DittoSerializer(PairSerializer):
    """DITTO-style ``[COL] name [VAL] value`` serialisation.

    Attribute names are included even when the value is missing, as in the
    original DITTO implementation; this is what makes the encoding longer and
    is responsible for DITTO (128)'s truncation problems on identifier-heavy
    securities records.
    """

    scheme = DITTO_SCHEME

    def serialize_record(self, record: Record) -> list[str]:
        tokens: list[str] = []
        for attribute in self.attributes:
            value = self._attribute_value(record, attribute)
            tokens.append(COL_TOKEN)
            tokens.extend(normalize_text(attribute).split() or [attribute.lower()])
            tokens.append(VAL_TOKEN)
            tokens.extend(normalize_text(value).split())
        return tokens


def make_serializer(
    scheme: str,
    attributes: Sequence[str],
    max_tokens: int = 128,
) -> PairSerializer:
    """Factory for serialisers by scheme name ("plain" or "ditto")."""
    if scheme == PLAIN_SCHEME:
        return PlainSerializer(attributes, max_tokens=max_tokens)
    if scheme == DITTO_SCHEME:
        return DittoSerializer(attributes, max_tokens=max_tokens)
    raise ValueError(f"unknown serialisation scheme: {scheme!r}")
