"""String similarity measures.

These are the classic record-linkage similarity functions.  They feed the
feature-based logistic matcher and several data-artifact sanity checks, and
give the tests an interpretable reference point: all functions return values
in ``[0, 1]`` where 1 means identical (except ``levenshtein_distance`` which
is a raw edit count).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from math import sqrt


def levenshtein_distance(a: str, b: str) -> int:
    """Edit distance between ``a`` and ``b`` (insert / delete / substitute)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string in the inner dimension to minimise memory.
    if len(b) > len(a):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(
                    previous[j] + 1,      # deletion
                    current[j - 1] + 1,   # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Normalised edit similarity: ``1 - distance / max_length``."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity, the base of the Jaro–Winkler measure."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0

    match_window = max(len(a), len(b)) // 2 - 1
    match_window = max(match_window, 0)

    a_matched = [False] * len(a)
    b_matched = [False] * len(b)
    matches = 0
    for i, char_a in enumerate(a):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len(b))
        for j in range(start, end):
            if b_matched[j] or b[j] != char_a:
                continue
            a_matched[i] = True
            b_matched[j] = True
            matches += 1
            break

    if matches == 0:
        return 0.0

    # Count transpositions among matched characters.
    transpositions = 0
    j = 0
    for i, matched in enumerate(a_matched):
        if not matched:
            continue
        while not b_matched[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / len(a)
        + matches / len(b)
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro–Winkler similarity (common-prefix boost, capped at 4 characters)."""
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError("prefix_weight must be in [0, 0.25]")
    jaro = jaro_similarity(a, b)
    prefix_length = 0
    for char_a, char_b in zip(a[:4], b[:4]):
        if char_a != char_b:
            break
        prefix_length += 1
    return jaro + prefix_length * prefix_weight * (1.0 - jaro)


def jaccard_similarity(a: Sequence[str] | set[str], b: Sequence[str] | set[str]) -> float:
    """Jaccard index of two token collections."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


def dice_coefficient(a: Sequence[str] | set[str], b: Sequence[str] | set[str]) -> float:
    """Sørensen–Dice coefficient of two token collections."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    denominator = len(set_a) + len(set_b)
    if denominator == 0:
        return 1.0
    return 2.0 * len(set_a & set_b) / denominator


def overlap_coefficient(a: Sequence[str] | set[str], b: Sequence[str] | set[str]) -> float:
    """Overlap (Szymkiewicz–Simpson) coefficient of two token collections."""
    set_a, set_b = set(a), set(b)
    if not set_a or not set_b:
        return 1.0 if not set_a and not set_b else 0.0
    return len(set_a & set_b) / min(len(set_a), len(set_b))


def cosine_token_similarity(a: Sequence[str], b: Sequence[str]) -> float:
    """Cosine similarity between token-count vectors."""
    counts_a = Counter(a)
    counts_b = Counter(b)
    if not counts_a and not counts_b:
        return 1.0
    if not counts_a or not counts_b:
        return 0.0
    dot = sum(counts_a[token] * counts_b[token] for token in counts_a.keys() & counts_b.keys())
    norm_a = sqrt(sum(value * value for value in counts_a.values()))
    norm_b = sqrt(sum(value * value for value in counts_b.values()))
    return dot / (norm_a * norm_b)


def longest_common_substring(a: str, b: str) -> int:
    """Length of the longest common contiguous substring.

    The paper's Figure 2 motivates false positives through "long shared
    character sequences" (Crowdstrike vs Crowdstreet); this is the feature
    that captures that.
    """
    if not a or not b:
        return 0
    previous = [0] * (len(b) + 1)
    best = 0
    for char_a in a:
        current = [0] * (len(b) + 1)
        for j, char_b in enumerate(b, start=1):
            if char_a == char_b:
                current[j] = previous[j - 1] + 1
                best = max(best, current[j])
        previous = current
    return best


def longest_common_substring_similarity(a: str, b: str) -> float:
    """Longest common substring normalised by the shorter string length."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return longest_common_substring(a, b) / min(len(a), len(b))
