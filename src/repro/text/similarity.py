"""String similarity measures.

These are the classic record-linkage similarity functions.  They feed the
feature-based logistic matcher and several data-artifact sanity checks, and
give the tests an interpretable reference point: all functions return values
in ``[0, 1]`` where 1 means identical (except ``levenshtein_distance`` which
is a raw edit count).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from math import sqrt


def levenshtein_distance(a: str, b: str) -> int:
    """Edit distance between ``a`` and ``b`` (insert / delete / substitute)."""
    if a == b:
        return 0
    # Trim the common prefix and suffix: optimal edits never touch them, so
    # the quadratic DP below only runs on the differing core — which for the
    # near-identical names blocking produces is usually a handful of
    # characters ("microsoft corp" vs "microsoft corporation" leaves "" vs
    # "oration" and skips the DP entirely).
    limit = min(len(a), len(b))
    prefix = 0
    while prefix < limit and a[prefix] == b[prefix]:
        prefix += 1
    suffix = 0
    while suffix < limit - prefix and a[len(a) - 1 - suffix] == b[len(b) - 1 - suffix]:
        suffix += 1
    a = a[prefix:len(a) - suffix]
    b = b[prefix:len(b) - suffix]
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string in the inner dimension to minimise memory.
    if len(b) > len(a):
        a, b = b, a
    # Rolling-row DP.  The inner loop carries the diagonal (previous[j-1])
    # and the last written cell in locals and branches instead of calling
    # min() on a fresh tuple — same recurrence, same results, roughly half
    # the interpreter work per cell on this hot path.
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        append = current.append
        diagonal = previous[0]  # previous[j - 1]
        last = i                # current[j - 1]
        for j, char_b in enumerate(b, start=1):
            above = previous[j]
            value = diagonal if char_a == char_b else diagonal + 1  # substitution
            deletion = above + 1
            if deletion < value:
                value = deletion
            insertion = last + 1
            if insertion < value:
                value = insertion
            append(value)
            last = value
            diagonal = above
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Normalised edit similarity: ``1 - distance / max_length``."""
    if a == b:
        # Covers the both-empty case (1.0 by definition) and skips the
        # distance call for identical strings: 1 - 0 / max_length == 1.0.
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity, the base of the Jaro–Winkler measure."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0

    match_window = max(len(a), len(b)) // 2 - 1
    match_window = max(match_window, 0)

    a_matched = [False] * len(a)
    b_matched = [False] * len(b)
    matches = 0
    for i, char_a in enumerate(a):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len(b))
        for j in range(start, end):
            if b_matched[j] or b[j] != char_a:
                continue
            a_matched[i] = True
            b_matched[j] = True
            matches += 1
            break

    if matches == 0:
        return 0.0

    # Count transpositions among matched characters.
    transpositions = 0
    j = 0
    for i, matched in enumerate(a_matched):
        if not matched:
            continue
        while not b_matched[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / len(a)
        + matches / len(b)
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro–Winkler similarity (common-prefix boost, capped at 4 characters)."""
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError("prefix_weight must be in [0, 0.25]")
    jaro = jaro_similarity(a, b)
    prefix_length = 0
    for char_a, char_b in zip(a[:4], b[:4]):
        if char_a != char_b:
            break
        prefix_length += 1
    return jaro + prefix_length * prefix_weight * (1.0 - jaro)


TokenSet = Sequence[str] | set[str] | frozenset[str]


def _as_set(tokens: TokenSet) -> set[str] | frozenset[str]:
    """Tokens as a set, without copying when they already are one.

    The per-record feature profiles hand the set-based measures precomputed
    frozensets, so the per-comparison ``set()`` construction disappears from
    the matching hot path.
    """
    if isinstance(tokens, (set, frozenset)):
        return tokens
    return set(tokens)


def jaccard_similarity(a: TokenSet, b: TokenSet) -> float:
    """Jaccard index of two token collections."""
    set_a, set_b = _as_set(a), _as_set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


def dice_coefficient(a: TokenSet, b: TokenSet) -> float:
    """Sørensen–Dice coefficient of two token collections."""
    set_a, set_b = _as_set(a), _as_set(b)
    if not set_a and not set_b:
        return 1.0
    denominator = len(set_a) + len(set_b)
    if denominator == 0:
        return 1.0
    return 2.0 * len(set_a & set_b) / denominator


def overlap_coefficient(a: TokenSet, b: TokenSet) -> float:
    """Overlap (Szymkiewicz–Simpson) coefficient of two token collections."""
    set_a, set_b = _as_set(a), _as_set(b)
    if not set_a or not set_b:
        return 1.0 if not set_a and not set_b else 0.0
    return len(set_a & set_b) / min(len(set_a), len(set_b))


def cosine_token_similarity(a: Sequence[str], b: Sequence[str]) -> float:
    """Cosine similarity between token-count vectors."""
    counts_a = Counter(a)
    counts_b = Counter(b)
    if not counts_a and not counts_b:
        return 1.0
    if not counts_a or not counts_b:
        return 0.0
    dot = sum(counts_a[token] * counts_b[token] for token in counts_a.keys() & counts_b.keys())
    norm_a = sqrt(sum(value * value for value in counts_a.values()))
    norm_b = sqrt(sum(value * value for value in counts_b.values()))
    return dot / (norm_a * norm_b)


def longest_common_substring(a: str, b: str) -> int:
    """Length of the longest common contiguous substring.

    The paper's Figure 2 motivates false positives through "long shared
    character sequences" (Crowdstrike vs Crowdstreet); this is the feature
    that captures that.
    """
    if not a or not b:
        return 0
    previous = [0] * (len(b) + 1)
    best = 0
    for char_a in a:
        current = [0] * (len(b) + 1)
        for j, char_b in enumerate(b, start=1):
            if char_a == char_b:
                current[j] = previous[j - 1] + 1
                best = max(best, current[j])
        previous = current
    return best


def longest_common_substring_similarity(a: str, b: str) -> float:
    """Longest common substring normalised by the shorter string length."""
    if a == b:
        # Covers both-empty (1.0 by definition) and skips the quadratic DP
        # for identical strings: LCS(a, a) == len(a), so len(a) / len(a) == 1.0.
        return 1.0
    if not a or not b:
        return 0.0
    return longest_common_substring(a, b) / min(len(a), len(b))
