"""Tokenisers and a trainable vocabulary.

The attention-based pairwise matcher needs integer token ids, so a small
:class:`Vocabulary` is provided that is fitted on the training pairs and maps
unseen words to character n-gram sub-tokens (a light-weight stand-in for the
WordPiece vocabulary DistilBERT uses).  The Token Overlap blocking only needs
plain word tokens.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence

from repro.text.normalize import normalize_text

# Special tokens mirror the BERT conventions the paper's models rely on.
PAD_TOKEN = "[PAD]"
UNK_TOKEN = "[UNK]"
CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
COL_TOKEN = "[COL]"
VAL_TOKEN = "[VAL]"

SPECIAL_TOKENS: tuple[str, ...] = (
    PAD_TOKEN,
    UNK_TOKEN,
    CLS_TOKEN,
    SEP_TOKEN,
    COL_TOKEN,
    VAL_TOKEN,
)


def whitespace_tokenize(text: str) -> list[str]:
    """Split on whitespace without any normalisation."""
    return text.split()


def word_tokenize(text: str | None) -> list[str]:
    """Normalise and split ``text`` into lower-case word tokens."""
    return normalize_text(text).split()


def char_ngrams(text: str | None, n: int = 3, pad: bool = True) -> list[str]:
    """Return the character n-grams of the normalised text.

    Padding with ``#`` marks word boundaries (as in classic fastText-style
    subword features) so that prefixes and suffixes are distinguishable.
    Texts shorter than ``n`` return the padded text itself as a single gram.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    normalized = normalize_text(text)
    if not normalized:
        return []
    source = f"#{normalized}#" if pad else normalized
    if len(source) <= n:
        return [source]
    return [source[i:i + n] for i in range(len(source) - n + 1)]


class Vocabulary:
    """Word-level vocabulary with sub-word fallback for unknown words.

    The vocabulary is fitted on a corpus of texts; words below the frequency
    cut-off or beyond the size budget are not stored.  At encoding time an
    out-of-vocabulary word is broken into character trigrams, each of which
    may itself be in the vocabulary (trigrams of retained words are added
    during fitting); whatever remains unknown maps to ``[UNK]``.
    """

    def __init__(self, max_size: int = 30_000, min_frequency: int = 1) -> None:
        if max_size <= len(SPECIAL_TOKENS):
            raise ValueError("max_size must exceed the number of special tokens")
        self.max_size = max_size
        self.min_frequency = min_frequency
        self._token_to_id: dict[str, int] = {
            token: idx for idx, token in enumerate(SPECIAL_TOKENS)
        }
        self._id_to_token: list[str] = list(SPECIAL_TOKENS)
        self._fitted = False

    # -- construction -------------------------------------------------------

    def fit(self, texts: Iterable[str]) -> "Vocabulary":
        """Fit the vocabulary on an iterable of raw texts."""
        word_counts: Counter[str] = Counter()
        gram_counts: Counter[str] = Counter()
        for text in texts:
            words = word_tokenize(text)
            word_counts.update(words)
            for word in words:
                gram_counts.update(char_ngrams(word, n=3))

        budget = self.max_size - len(SPECIAL_TOKENS)
        # Words take priority over sub-word grams; a third of the budget is
        # reserved for grams so unknown words can still be represented.
        word_budget = max(1, int(budget * 2 / 3))
        gram_budget = budget - word_budget

        for word, count in word_counts.most_common():
            if count < self.min_frequency or word_budget <= 0:
                break
            self._add_token(word)
            word_budget -= 1

        for gram, count in gram_counts.most_common():
            if gram_budget <= 0:
                break
            if count < self.min_frequency:
                break
            if gram not in self._token_to_id:
                self._add_token(gram)
                gram_budget -= 1

        self._fitted = True
        return self

    def _add_token(self, token: str) -> int:
        if token in self._token_to_id:
            return self._token_to_id[token]
        idx = len(self._id_to_token)
        self._token_to_id[token] = idx
        self._id_to_token.append(token)
        return idx

    # -- lookup --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK_TOKEN]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[CLS_TOKEN]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[SEP_TOKEN]

    def token_id(self, token: str) -> int:
        """Return the id of ``token`` (``[UNK]`` id when not present)."""
        return self._token_to_id.get(token, self.unk_id)

    def id_to_token(self, idx: int) -> str:
        return self._id_to_token[idx]

    # -- encoding ------------------------------------------------------------

    def encode_word(self, word: str) -> list[int]:
        """Encode a single word, falling back to trigram sub-tokens."""
        if word in self._token_to_id:
            return [self._token_to_id[word]]
        sub_ids = [
            self._token_to_id[gram]
            for gram in char_ngrams(word, n=3)
            if gram in self._token_to_id
        ]
        return sub_ids if sub_ids else [self.unk_id]

    def encode(
        self,
        tokens: Sequence[str],
        max_length: int | None = None,
        add_special_tokens: bool = True,
    ) -> list[int]:
        """Encode a token sequence into ids, truncating to ``max_length``.

        ``[CLS]`` and ``[SEP]`` framing mirrors the sequence-classification
        input the paper's models receive; the budget includes the special
        tokens so a ``max_length=128`` encoding is never longer than 128.
        """
        ids: list[int] = []
        for token in tokens:
            if token in SPECIAL_TOKENS:
                ids.append(self._token_to_id[token])
            else:
                ids.extend(self.encode_word(token))

        if add_special_tokens:
            ids = [self.cls_id] + ids + [self.sep_id]
        if max_length is not None and len(ids) > max_length:
            ids = ids[:max_length]
            if add_special_tokens:
                ids[-1] = self.sep_id
        return ids

    def pad(self, ids: Sequence[int], length: int) -> list[int]:
        """Right-pad ``ids`` with ``[PAD]`` up to ``length`` (or truncate)."""
        padded = list(ids[:length])
        padded.extend([self.pad_id] * (length - len(padded)))
        return padded
