"""Text normalisation for company, security and product records.

Company names appear with a lot of incidental variation across data sources
("Microsoft Corporation", "MICROSOFT CORP.", "Microsoft corp"), most of which
is orthographic rather than semantic.  Normalisation lower-cases, collapses
whitespace, strips punctuation and optionally removes corporate suffix terms
so that downstream similarity measures and the Token Overlap blocking compare
the informative part of the names.
"""

from __future__ import annotations

import re
import unicodedata

# Corporate suffixes and legal-form terms that carry no entity identity.  The
# InsertCorporateTerm data artifact draws from the same list, so the matcher
# and the generator agree on what counts as "noise".
CORPORATE_TERMS: tuple[str, ...] = (
    "inc",
    "incorporated",
    "corp",
    "corporation",
    "ltd",
    "limited",
    "llc",
    "plc",
    "gmbh",
    "ag",
    "sa",
    "nv",
    "co",
    "company",
    "holdings",
    "holding",
    "group",
    "international",
    "technologies",
    "solutions",
    "partners",
    "ventures",
)

#: Pure legal-form suffixes (a strict subset of :data:`CORPORATE_TERMS`);
#: acronyms ignore these but keep informative words such as "Holdings".
LEGAL_SUFFIXES: tuple[str, ...] = (
    "inc", "incorporated", "corp", "corporation", "ltd", "limited", "llc",
    "plc", "gmbh", "ag", "sa", "nv", "co",
)

_PUNCTUATION_RE = re.compile(r"[^\w\s]")
_WHITESPACE_RE = re.compile(r"\s+")


def normalize_text(text: str | None, strip_punctuation: bool = True) -> str:
    """Return a canonical lower-case form of ``text``.

    ``None`` and empty values normalise to the empty string so callers can
    treat missing attributes uniformly.  Unicode is NFKD-decomposed and
    accents removed because data sources romanise names inconsistently.
    """
    if not text:
        return ""
    decomposed = unicodedata.normalize("NFKD", text)
    ascii_text = decomposed.encode("ascii", "ignore").decode("ascii")
    lowered = ascii_text.lower()
    if strip_punctuation:
        lowered = _PUNCTUATION_RE.sub(" ", lowered)
    return _WHITESPACE_RE.sub(" ", lowered).strip()


def strip_corporate_terms(name: str | None) -> str:
    """Remove corporate suffix terms from a (normalised) company name.

    The result keeps the original word order of the remaining tokens.  If
    stripping would leave nothing (e.g. the name is literally "Holdings
    Inc."), the normalised name is returned unchanged so that records never
    end up with an empty key.
    """
    normalized = normalize_text(name)
    if not normalized:
        return ""
    kept = [token for token in normalized.split() if token not in CORPORATE_TERMS]
    if not kept:
        return normalized
    return " ".join(kept)


def acronym_of(name: str | None) -> str:
    """Build the acronym of a company name (first letter of each word).

    Legal-form suffixes are ignored ("Advanced Micro Devices Inc" becomes
    "amd") but informative words such as "Holdings" are kept ("Crowdstrike
    Holdings" becomes "ch").  When stripping removes every token the full
    normalised name is used instead, so the result is never empty for a
    non-empty input.
    """
    normalized = normalize_text(name)
    tokens = [token for token in normalized.split() if token not in LEGAL_SUFFIXES]
    if not tokens:
        tokens = normalized.split()
    if not tokens:
        return ""
    return "".join(token[0] for token in tokens)


def normalize_identifier(value: str | None) -> str:
    """Canonicalise an identifier (ISIN/CUSIP/...): upper-case, no separators."""
    if not value:
        return ""
    return re.sub(r"[\s\-./]", "", value).upper()
