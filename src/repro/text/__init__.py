"""Text substrate: normalisation, tokenisation, similarity and vectorisation.

The pairwise matchers and the Token Overlap blocking both operate on
serialised, tokenised record text.  This subpackage provides everything the
paper's DistilBERT / DITTO setups take from the HuggingFace stack, rebuilt on
plain Python + numpy:

* :mod:`repro.text.normalize` — lower-casing, punctuation handling, corporate
  suffix normalisation,
* :mod:`repro.text.tokenize` — word and character n-gram tokenisers plus a
  trainable :class:`~repro.text.tokenize.Vocabulary`,
* :mod:`repro.text.similarity` — classic string similarity measures,
* :mod:`repro.text.batch_similarity` — the same measures as batched numpy
  kernels over deduplicated pair lists (bitwise-equal to the scalar forms),
* :mod:`repro.text.vectorize` — TF-IDF and hashing vectorisers,
* :mod:`repro.text.serialize` — record-pair serialisation schemes (plain and
  DITTO-style ``[COL]/[VAL]`` encoding) with token budgets.
"""

from repro.text.normalize import normalize_text, strip_corporate_terms
from repro.text.tokenize import (
    Vocabulary,
    char_ngrams,
    whitespace_tokenize,
    word_tokenize,
)
from repro.text.similarity import (
    cosine_token_similarity,
    dice_coefficient,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    longest_common_substring,
    overlap_coefficient,
)
from repro.text.batch_similarity import (
    jaro_winkler_similarity_batch,
    levenshtein_similarity_batch,
    longest_common_substring_similarity_batch,
)
from repro.text.vectorize import HashingVectorizer, TfidfVectorizer
from repro.text.serialize import (
    PLAIN_SCHEME,
    DittoSerializer,
    PairSerializer,
    PlainSerializer,
)

__all__ = [
    "normalize_text",
    "strip_corporate_terms",
    "Vocabulary",
    "char_ngrams",
    "whitespace_tokenize",
    "word_tokenize",
    "cosine_token_similarity",
    "dice_coefficient",
    "jaccard_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "longest_common_substring",
    "overlap_coefficient",
    "jaro_winkler_similarity_batch",
    "levenshtein_similarity_batch",
    "longest_common_substring_similarity_batch",
    "HashingVectorizer",
    "TfidfVectorizer",
    "PLAIN_SCHEME",
    "PairSerializer",
    "PlainSerializer",
    "DittoSerializer",
]
