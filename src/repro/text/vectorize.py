"""Sparse-ish text vectorisers built on numpy.

The Token Overlap blocking and the feature-based matcher need document
vectors for cosine comparisons.  Two vectorisers are provided:

* :class:`TfidfVectorizer` — fitted vocabulary with inverse document
  frequency weighting (the standard IR formulation with add-one smoothing),
* :class:`HashingVectorizer` — stateless feature hashing, useful when the
  corpus is too large to hold a fitted vocabulary (the 200K-group synthetic
  generation path).

Vectors are returned as ``{index: weight}`` dictionaries rather than dense
arrays: record texts are short, so sparse dictionaries keep the memory of a
near-million-record corpus manageable and make dot products cheap.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence

from repro.text.tokenize import word_tokenize

SparseVector = dict[int, float]


class NormedSparseVector(dict):
    """A sparse vector that remembers its own Euclidean norm.

    Behaves exactly like the plain ``{index: weight}`` dictionary everywhere
    (it *is* one), but :func:`sparse_norm` — and therefore
    :func:`sparse_cosine` — reads the cached norm instead of re-reducing the
    weights on every comparison.  The cache is filled lazily with the exact
    same ``sqrt(sum(w*w))`` reduction over the same iteration order, so the
    cached value is bitwise identical to a fresh computation.  Vectors are
    treated as immutable once handed out (the vectorisers never mutate
    them); mutate a copy if you need to edit one.
    """

    __slots__ = ("_norm",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._norm: float | None = None

    @property
    def norm(self) -> float:
        if self._norm is None:
            self._norm = math.sqrt(sum(weight * weight for weight in self.values()))
        return self._norm


def sparse_dot(a: SparseVector, b: SparseVector) -> float:
    """Dot product of two sparse vectors."""
    if len(a) > len(b):
        a, b = b, a
    return sum(weight * b.get(index, 0.0) for index, weight in a.items())


def sparse_norm(a: SparseVector) -> float:
    """Euclidean norm of a sparse vector (cached for normed vectors)."""
    if isinstance(a, NormedSparseVector):
        return a.norm
    return math.sqrt(sum(weight * weight for weight in a.values()))


def sparse_cosine(a: SparseVector, b: SparseVector) -> float:
    """Cosine similarity of two sparse vectors (0 when either is empty)."""
    if not a or not b:
        return 0.0
    denominator = sparse_norm(a) * sparse_norm(b)
    if denominator == 0.0:
        return 0.0
    return sparse_dot(a, b) / denominator


class TfidfVectorizer:
    """TF-IDF vectoriser over word tokens.

    ``fit`` learns the vocabulary and document frequencies; ``transform``
    maps texts to L2-normalised sparse vectors.  Tokens unseen at fit time
    are ignored at transform time (the standard behaviour).
    """

    def __init__(self, min_document_frequency: int = 1, max_features: int | None = None) -> None:
        if min_document_frequency < 1:
            raise ValueError("min_document_frequency must be >= 1")
        self.min_document_frequency = min_document_frequency
        self.max_features = max_features
        self._vocabulary: dict[str, int] = {}
        self._idf: dict[int, float] = {}
        self._num_documents = 0

    @property
    def vocabulary(self) -> dict[str, int]:
        return dict(self._vocabulary)

    def fit(self, texts: Iterable[str]) -> "TfidfVectorizer":
        document_frequency: Counter[str] = Counter()
        self._num_documents = 0
        for text in texts:
            self._num_documents += 1
            document_frequency.update(set(word_tokenize(text)))

        eligible = [
            (token, frequency)
            for token, frequency in document_frequency.items()
            if frequency >= self.min_document_frequency
        ]
        eligible.sort(key=lambda item: (-item[1], item[0]))
        if self.max_features is not None:
            eligible = eligible[: self.max_features]

        self._vocabulary = {token: idx for idx, (token, _) in enumerate(eligible)}
        self._idf = {}
        for token, frequency in eligible:
            idx = self._vocabulary[token]
            # Smoothed idf, as in scikit-learn, keeps ubiquitous tokens > 0.
            self._idf[idx] = math.log((1 + self._num_documents) / (1 + frequency)) + 1.0
        return self

    def transform_one(self, text: str) -> SparseVector:
        if not self._vocabulary:
            raise RuntimeError("vectorizer must be fitted before transform")
        counts = Counter(word_tokenize(text))
        vector: SparseVector = {}
        for token, count in counts.items():
            idx = self._vocabulary.get(token)
            if idx is None:
                continue
            vector[idx] = count * self._idf[idx]
        norm = sparse_norm(vector)
        if norm > 0:
            vector = {idx: weight / norm for idx, weight in vector.items()}
        # Normed so repeated sparse_cosine comparisons stop re-reducing both
        # sides' weights (the norm is computed once, lazily, per vector).
        return NormedSparseVector(vector)

    def transform(self, texts: Iterable[str]) -> list[SparseVector]:
        return [self.transform_one(text) for text in texts]

    def fit_transform(self, texts: Sequence[str]) -> list[SparseVector]:
        return self.fit(texts).transform(texts)


class HashingVectorizer:
    """Stateless hashing vectoriser (term-frequency with a signed hash).

    No fitting step: every token hashes to one of ``num_features`` buckets
    with a sign derived from a secondary hash, which keeps collisions from
    systematically inflating similarity.  A process-independent FNV-1a hash
    is used (not the built-in ``hash``) so vectors are reproducible across
    runs regardless of ``PYTHONHASHSEED``.
    """

    def __init__(self, num_features: int = 2 ** 18) -> None:
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features

    @staticmethod
    def _fnv1a(text: str) -> int:
        value = 0xCBF29CE484222325
        for byte in text.encode("utf-8"):
            value ^= byte
            value = (value * 0x100000001B3) % (1 << 64)
        return value

    def transform_one(self, text: str) -> SparseVector:
        vector: SparseVector = {}
        for token in word_tokenize(text):
            digest = self._fnv1a(token)
            bucket = digest % self.num_features
            sign = 1.0 if (digest >> 32) % 2 == 0 else -1.0
            vector[bucket] = vector.get(bucket, 0.0) + sign
        # Drop exact cancellations and L2-normalise.
        vector = {idx: weight for idx, weight in vector.items() if weight != 0.0}
        norm = sparse_norm(vector)
        if norm > 0:
            vector = {idx: weight / norm for idx, weight in vector.items()}
        return NormedSparseVector(vector)

    def transform(self, texts: Iterable[str]) -> list[SparseVector]:
        return [self.transform_one(text) for text in texts]
