"""Command-line interface.

A small operational front-end over the library, mirroring what the paper's
accompanying code exposes:

* ``repro generate`` — generate the synthetic companies / securities
  benchmark (optionally the WDC-Products-style dataset) and write CSVs,
* ``repro stats`` — print the Table 1 statistics of a dataset CSV,
* ``repro match`` — run the end-to-end entity group matching experiment on a
  generated dataset and print the three-stage scores (a Table 4 row),
* ``repro run`` — the same experiment driven by a declarative JSON/TOML
  spec file (see :mod:`repro.specs`); ``repro match`` is a thin shim that
  builds such a spec from its flags, so both commands share one code path.

Installed as ``repro`` (see ``pyproject.toml``) or runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path
from collections.abc import Sequence

from repro.datagen import GenerationConfig, dataset_statistics, generate_benchmark
from repro.datagen.io import read_dataset_csv, write_dataset_csv
from repro.datagen.records import Dataset
from repro.datagen.wdc import WdcConfig, generate_wdc_products
from repro.evaluation import format_table
from repro.runtime import EXECUTOR_KINDS
from repro.specs import (
    ExperimentSpec,
    PipelineSpec,
    RuntimeSpec,
    SpecValidationError,
)


def positive_int(text: str) -> int:
    """Argparse type for strictly positive integers (workers, batch sizes)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    return value


def _require_dataset(path: Path) -> Dataset | None:
    """Load a dataset CSV, or report the missing file identically everywhere.

    Every dataset-consuming subcommand (``stats``, ``match``, ``run``) goes
    through this helper so the error text and exit behaviour never drift:
    on a missing file it prints ``error: dataset file not found: <path>`` to
    stderr and returns ``None`` (the caller exits 2).
    """
    if not path.exists():
        print(f"error: dataset file not found: {path}", file=sys.stderr)
        return None
    return read_dataset_csv(path)


#: The execution-engine flags shared by ``match`` and ``run``; each maps 1:1
#: onto a ``pipeline.runtime`` spec key.
_RUNTIME_FLAG_KEYS = (
    "workers",
    "batch_size",
    "executor",
    "blocking_shards",
    "profile_cache",
)


def _add_runtime_flags(parser: argparse.ArgumentParser, *, overrides: bool) -> None:
    """Attach the runtime flags to a subcommand parser.

    With ``overrides=True`` (the ``run`` subcommand) every default is
    ``None`` so that only flags the user actually typed override the spec
    file — CLI beats spec, spec beats library default.
    """
    parser.add_argument("--workers", type=positive_int,
                        default=None if overrides else 1,
                        help="execution-engine worker slots (1 = serial engine)")
    parser.add_argument("--batch-size", type=positive_int,
                        default=None if overrides else 2048,
                        help="candidate pairs per pairwise-inference chunk")
    parser.add_argument("--executor", choices=list(EXECUTOR_KINDS),
                        default=None if overrides else "process",
                        help="worker pool flavour used when --workers > 1")
    parser.add_argument("--blocking-shards", type=positive_int,
                        default=None if overrides else 1,
                        help="record chunks candidate generation is sharded "
                             "into (1 = one task per blocking)")
    parser.add_argument("--profile-cache", action=argparse.BooleanOptionalAction,
                        default=None if overrides else True,
                        help="score pairwise inference from per-record feature "
                             "profiles prepared once per run (byte-identical "
                             "output either way; --no-profile-cache forces the "
                             "per-pair recompute path)")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testability)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraLMatch reproduction: entity group matching tooling",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate the synthetic multi-source benchmark datasets"
    )
    generate.add_argument("--entities", type=positive_int, default=1_000,
                          help="number of company record groups to generate")
    generate.add_argument("--sources", type=positive_int, default=5,
                          help="number of data sources")
    generate.add_argument("--seed", type=int, default=0, help="generation seed")
    generate.add_argument("--wdc", action="store_true",
                          help="also generate the WDC-Products-style dataset")
    generate.add_argument("--output-dir", type=Path, default=Path("data"),
                          help="directory the CSV files are written to")

    stats = subparsers.add_parser(
        "stats", help="print Table 1 statistics for a dataset CSV"
    )
    stats.add_argument("dataset", type=Path, help="path to a dataset CSV")

    match = subparsers.add_parser(
        "match", help="run the end-to-end entity group matching experiment"
    )
    match.add_argument("dataset", type=Path, help="path to a dataset CSV")
    match.add_argument("--kind", choices=["companies", "securities", "products"],
                       default="companies", help="dataset kind (selects the blocking recipe)")
    match.add_argument("--model", default="distilbert-128-all",
                       help="model spec name (see repro.matching.models.MODEL_SPECS)")
    match.add_argument("--epochs", type=positive_int, default=3, help="fine-tuning epochs")
    match.add_argument("--seed", type=int, default=0, help="split / sampling seed")
    _add_runtime_flags(match, overrides=False)

    run = subparsers.add_parser(
        "run", help="run an experiment described by a declarative JSON/TOML spec"
    )
    run.add_argument("config", type=Path,
                     help="path to an experiment spec (.toml or .json)")
    run.add_argument("--dataset", type=Path, default=None,
                     help="dataset CSV overriding the spec's experiment.dataset path")
    _add_runtime_flags(run, overrides=True)
    return parser


def _command_generate(args: argparse.Namespace) -> int:
    config = GenerationConfig(
        num_entities=args.entities, num_sources=args.sources, seed=args.seed
    )
    benchmark = generate_benchmark(config)
    output_dir = args.output_dir
    companies_path = write_dataset_csv(benchmark.companies, output_dir / "companies.csv")
    securities_path = write_dataset_csv(benchmark.securities, output_dir / "securities.csv")
    print(f"wrote {len(benchmark.companies)} company records to {companies_path}")
    print(f"wrote {len(benchmark.securities)} security records to {securities_path}")
    if args.wdc:
        wdc = generate_wdc_products(WdcConfig(num_entities=max(args.entities // 2, 10),
                                              seed=args.seed))
        wdc_path = write_dataset_csv(wdc, output_dir / "wdc_products.csv")
        print(f"wrote {len(wdc)} product records to {wdc_path}")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    dataset = _require_dataset(args.dataset)
    if dataset is None:
        return 2
    row = dataset_statistics(dataset).as_row()
    print(format_table([row], title=f"Dataset statistics — {dataset.name}"))
    return 0


def _run_spec(spec: ExperimentSpec, dataset_path: Path) -> int:
    """Shared execution path of ``match`` and ``run``."""
    from repro.api import run_experiment

    dataset = _require_dataset(dataset_path)
    if dataset is None:
        return 2
    result = run_experiment(spec, dataset=dataset)
    print(format_table([result.as_row()], title="Entity group matching result"))
    return 0


def _command_match(args: argparse.Namespace) -> int:
    try:
        spec = ExperimentSpec(
            dataset=str(args.dataset),
            kind=args.kind,
            model=args.model,
            epochs=args.epochs,
            seed=args.seed,
            pipeline=PipelineSpec(
                runtime=RuntimeSpec(
                    workers=args.workers,
                    batch_size=args.batch_size,
                    executor=args.executor,
                    blocking_shards=args.blocking_shards,
                    profile_cache=args.profile_cache,
                ),
            ),
        )
    except SpecValidationError as error:
        # Flags map 1:1 onto spec keys (e.g. --model -> experiment.model),
        # so the named-key message pinpoints the offending flag.
        print(f"error: {error}", file=sys.stderr)
        return 2
    return _run_spec(spec, args.dataset)


def _apply_runtime_overrides(
    spec: ExperimentSpec, args: argparse.Namespace
) -> ExperimentSpec:
    """Overlay explicitly-typed runtime flags on a loaded spec.

    Precedence: a flag the user passed beats the spec file's
    ``[pipeline.runtime]`` value, which beats the library default — flags
    left at their ``None`` default never touch the spec.
    """
    overrides = {
        key: value
        for key in _RUNTIME_FLAG_KEYS
        if (value := getattr(args, key)) is not None
    }
    if not overrides:
        return spec
    runtime = replace(spec.pipeline.runtime, **overrides)
    return replace(spec, pipeline=replace(spec.pipeline, runtime=runtime))


def _command_run(args: argparse.Namespace) -> int:
    from repro.api import load_spec

    if not args.config.exists():
        print(f"error: spec file not found: {args.config}", file=sys.stderr)
        return 2
    try:
        spec = _apply_runtime_overrides(load_spec(args.config), args)
    except SpecValidationError as error:
        print(f"error: invalid spec {args.config}: {error}", file=sys.stderr)
        return 2
    dataset_path = args.dataset if args.dataset is not None else (
        Path(spec.dataset) if spec.dataset else None
    )
    if dataset_path is None:
        print(
            f"error: {args.config} sets no experiment.dataset and no "
            "--dataset was given",
            file=sys.stderr,
        )
        return 2
    return _run_spec(spec, dataset_path)


_COMMANDS = {
    "generate": _command_generate,
    "stats": _command_stats,
    "match": _command_match,
    "run": _command_run,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
