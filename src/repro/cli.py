"""Command-line interface.

A small operational front-end over the library, mirroring what the paper's
accompanying code exposes:

* ``repro generate`` — generate the synthetic companies / securities
  benchmark (optionally the WDC-Products-style dataset) and write CSVs,
* ``repro stats`` — print the Table 1 statistics of a dataset CSV,
* ``repro match`` — run the end-to-end entity group matching experiment on a
  generated dataset and print the three-stage scores (a Table 4 row),
* ``repro run`` — the same experiment driven by a declarative JSON/TOML
  spec file (see :mod:`repro.specs`); ``repro match`` is a thin shim that
  builds such a spec from its flags, so both commands share one code path,
* ``repro ingest`` — incremental ingestion: feed record-batch CSVs into a
  persistent match state directory (created from a spec on first use); the
  resulting groups are byte-identical to a one-shot ``repro run`` over the
  concatenated batches,
* ``repro state show`` — inspect a match state directory (and export its
  current groups),
* ``repro report`` — render a ``--trace`` JSONL run trace as a span tree
  with per-stage throughput and cache-hit summaries, or export it as Chrome
  ``trace_event`` JSON (``--chrome``) for flame-chart viewing,
* ``repro lint`` — the project-contract static analyser
  (:mod:`repro.analysis`): AST rules enforcing the determinism, two-phase
  protocol and pool-safety invariants, with ``--select``/``--ignore``,
  ``--format json``, baselines and inline suppressions.

Installed as ``repro`` (see ``pyproject.toml``) or runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from collections.abc import Sequence

from repro.datagen import GenerationConfig, dataset_statistics, generate_benchmark
from repro.datagen.io import read_dataset_csv, write_dataset_csv
from repro.datagen.records import Dataset
from repro.datagen.wdc import WdcConfig, generate_wdc_products
from repro.evaluation import format_table
from repro.runtime import EXECUTOR_KINDS
from repro.specs import (
    ExperimentSpec,
    PipelineSpec,
    RuntimeSpec,
    SpecValidationError,
)


def positive_int(text: str) -> int:
    """Argparse type for strictly positive integers (workers, batch sizes)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    return value


def _require_dataset(path: Path) -> Dataset | None:
    """Load a dataset CSV, or report the missing file identically everywhere.

    Every dataset-consuming subcommand (``stats``, ``match``, ``run``) goes
    through this helper so the error text and exit behaviour never drift:
    on a missing file it prints ``error: dataset file not found: <path>`` to
    stderr and returns ``None`` (the caller exits 2).
    """
    if not path.exists():
        print(f"error: dataset file not found: {path}", file=sys.stderr)
        return None
    return read_dataset_csv(path)


#: The execution-engine flags shared by ``match`` and ``run``; each maps 1:1
#: onto a ``pipeline.runtime`` spec key.
_RUNTIME_FLAG_KEYS = (
    "workers",
    "batch_size",
    "executor",
    "blocking_shards",
    "profile_cache",
    "columnar_dispatch",
    "warm_pool",
    "trace",
)


def _add_runtime_flags(parser: argparse.ArgumentParser, *, overrides: bool) -> None:
    """Attach the runtime flags to a subcommand parser.

    With ``overrides=True`` (the ``run`` subcommand) every default is
    ``None`` so that only flags the user actually typed override the spec
    file — CLI beats spec, spec beats library default.
    """
    parser.add_argument("--workers", type=positive_int,
                        default=None if overrides else 1,
                        help="execution-engine worker slots (1 = serial engine)")
    parser.add_argument("--batch-size", type=positive_int,
                        default=None if overrides else 2048,
                        help="candidate pairs per pairwise-inference chunk")
    parser.add_argument("--executor", choices=list(EXECUTOR_KINDS),
                        default=None if overrides else "process",
                        help="worker pool flavour used when --workers > 1")
    parser.add_argument("--blocking-shards", type=positive_int,
                        default=None if overrides else 1,
                        help="record chunks candidate generation is sharded "
                             "into (1 = one task per blocking)")
    parser.add_argument("--profile-cache", action=argparse.BooleanOptionalAction,
                        default=None if overrides else True,
                        help="score pairwise inference from per-record feature "
                             "profiles prepared once per run (byte-identical "
                             "output either way; --no-profile-cache forces the "
                             "per-pair recompute path)")
    parser.add_argument("--columnar-dispatch", action=argparse.BooleanOptionalAction,
                        default=None if overrides else True,
                        help="dispatch pairwise matching through the matcher's "
                             "columnar score_profiled kernel, carrying "
                             "probability arrays between stages and "
                             "materialising decision objects lazily "
                             "(byte-identical output either way; "
                             "--no-columnar-dispatch forces the per-pair "
                             "decision-object route)")
    parser.add_argument("--warm-pool", action=argparse.BooleanOptionalAction,
                        default=None if overrides else True,
                        help="keep one persistent worker pool across pipeline "
                             "stages and ingest batches, shipping shared state "
                             "once per revision (byte-identical output either "
                             "way; --no-warm-pool restores the pool-per-call "
                             "engine)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="stream a structured run trace (spans + metrics, "
                             "JSON Lines) to this file; inspect it with "
                             "'repro report' (tracing never changes outputs)")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testability)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraLMatch reproduction: entity group matching tooling",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="library log level on stderr: -v INFO, -vv DEBUG "
                             "(default: warnings only)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate the synthetic multi-source benchmark datasets"
    )
    generate.add_argument("--entities", type=positive_int, default=1_000,
                          help="number of company record groups to generate")
    generate.add_argument("--sources", type=positive_int, default=5,
                          help="number of data sources")
    generate.add_argument("--seed", type=int, default=0, help="generation seed")
    generate.add_argument("--wdc", action="store_true",
                          help="also generate the WDC-Products-style dataset")
    generate.add_argument("--output-dir", type=Path, default=Path("data"),
                          help="directory the CSV files are written to")

    stats = subparsers.add_parser(
        "stats", help="print Table 1 statistics for a dataset CSV"
    )
    stats.add_argument("dataset", type=Path, help="path to a dataset CSV")

    match = subparsers.add_parser(
        "match", help="run the end-to-end entity group matching experiment"
    )
    match.add_argument("dataset", type=Path, help="path to a dataset CSV")
    match.add_argument("--kind", choices=["companies", "securities", "products"],
                       default="companies", help="dataset kind (selects the blocking recipe)")
    match.add_argument("--model", default="distilbert-128-all",
                       help="model spec name (see repro.matching.models.MODEL_SPECS)")
    match.add_argument("--epochs", type=positive_int, default=3, help="fine-tuning epochs")
    match.add_argument("--seed", type=int, default=0, help="split / sampling seed")
    _add_runtime_flags(match, overrides=False)

    run = subparsers.add_parser(
        "run", help="run an experiment described by a declarative JSON/TOML spec"
    )
    run.add_argument("config", type=Path,
                     help="path to an experiment spec (.toml or .json)")
    run.add_argument("--dataset", type=Path, default=None,
                     help="dataset CSV overriding the spec's experiment.dataset path")
    run.add_argument("--groups-out", type=Path, default=None,
                     help="write the final entity groups to this JSON file "
                          "(canonically sorted, so equal partitions compare "
                          "byte-equal)")
    _add_runtime_flags(run, overrides=True)

    ingest = subparsers.add_parser(
        "ingest",
        help="ingest record-batch CSVs into a persistent match state "
             "(byte-identical groups to a one-shot run over all batches)",
    )
    ingest.add_argument("batches", type=Path, nargs="+",
                        help="record-batch CSV files, ingested in order")
    ingest.add_argument("--state", type=Path, default=None,
                        help="match state directory (defaults to the spec's "
                             "[pipeline.state] dir); created on first use")
    ingest.add_argument("--config", type=Path, default=None,
                        help="experiment spec used to initialise a fresh "
                             "state (required the first time)")
    ingest.add_argument("--train-dataset", type=Path, default=None,
                        help="dataset CSV the matcher is fine-tuned on at "
                             "state creation (defaults to the spec's "
                             "experiment.dataset; train on the full corpus "
                             "to reproduce a one-shot run exactly)")
    ingest.add_argument("--groups-out", type=Path, default=None,
                        help="write the post-ingest entity groups to this "
                             "JSON file (same canonical format as repro run)")
    ingest.add_argument("--no-save", action="store_true",
                        help="do not persist the updated state back to the "
                             "state directory")
    _add_runtime_flags(ingest, overrides=True)

    lint = subparsers.add_parser(
        "lint",
        help="statically check the determinism / protocol / pool-safety "
             "contracts (see repro.analysis)",
    )
    lint.add_argument("paths", type=Path, nargs="*",
                      help="files or directories to lint (default: src); "
                           ".toml/.json files are checked as spec data")
    lint.add_argument("--select", default=None, metavar="RULES",
                      help="comma-separated rule names to run (default: all "
                           "registered rules; see --list-rules)")
    lint.add_argument("--ignore", default=None, metavar="RULES",
                      help="comma-separated rule names to skip")
    lint.add_argument("--format", choices=["text", "json"], default="text",
                      dest="output_format",
                      help="findings as human-readable lines or one JSON "
                           "document")
    lint.add_argument("--baseline", type=Path, default=None,
                      help="JSON baseline file; findings recorded in it are "
                           "filtered out (adopt a rule before paying down "
                           "its backlog)")
    lint.add_argument("--write-baseline", type=Path, default=None,
                      help="write the current findings to this baseline "
                           "file and exit 0")
    lint.add_argument("--list-rules", action="store_true",
                      help="list the registered rules and exit")

    report = subparsers.add_parser(
        "report",
        help="render a --trace JSONL file as a span tree with per-stage "
             "throughput and cache-hit summaries",
    )
    report.add_argument("trace", type=Path, help="trace JSONL file written "
                        "by --trace on run/match/ingest")
    report.add_argument("--chrome", type=Path, default=None, metavar="OUT",
                        help="also export the trace as Chrome trace_event "
                             "JSON (load in chrome://tracing or Perfetto)")

    state = subparsers.add_parser(
        "state", help="inspect persistent match state directories"
    )
    state_sub = state.add_subparsers(dest="state_command", required=True)
    show = state_sub.add_parser(
        "show", help="print a match state's manifest summary"
    )
    show.add_argument("state_dir", type=Path, help="match state directory")
    show.add_argument("--groups-out", type=Path, default=None,
                      help="write the state's current entity groups to this "
                           "JSON file (same canonical format as repro run)")
    return parser


def _command_generate(args: argparse.Namespace) -> int:
    config = GenerationConfig(
        num_entities=args.entities, num_sources=args.sources, seed=args.seed
    )
    benchmark = generate_benchmark(config)
    output_dir = args.output_dir
    companies_path = write_dataset_csv(benchmark.companies, output_dir / "companies.csv")
    securities_path = write_dataset_csv(benchmark.securities, output_dir / "securities.csv")
    print(f"wrote {len(benchmark.companies)} company records to {companies_path}")
    print(f"wrote {len(benchmark.securities)} security records to {securities_path}")
    if args.wdc:
        wdc = generate_wdc_products(WdcConfig(num_entities=max(args.entities // 2, 10),
                                              seed=args.seed))
        wdc_path = write_dataset_csv(wdc, output_dir / "wdc_products.csv")
        print(f"wrote {len(wdc)} product records to {wdc_path}")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    dataset = _require_dataset(args.dataset)
    if dataset is None:
        return 2
    row = dataset_statistics(dataset).as_row()
    print(format_table([row], title=f"Dataset statistics — {dataset.name}"))
    return 0


def write_groups_json(groups, path: Path) -> Path:
    """Write entity groups to ``path`` in canonical JSON form.

    Groups are sorted record lists, sorted among themselves — a pure
    function of the *partition*, independent of internal group order — so
    two runs produce byte-equal files iff they produced the same groups.
    This is what the CI smoke diffs between ``repro run`` and ``repro
    ingest``.
    """
    canonical = sorted(sorted(group) for group in groups)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"groups": canonical}, indent=2) + "\n",
                    encoding="utf-8")
    return path


def _run_spec(spec: ExperimentSpec, dataset_path: Path,
              groups_out: Path | None = None) -> int:
    """Shared execution path of ``match`` and ``run``."""
    from repro.api import run_experiment

    dataset = _require_dataset(dataset_path)
    if dataset is None:
        return 2
    result = run_experiment(spec, dataset=dataset)
    print(format_table([result.as_row()], title="Entity group matching result"))
    if groups_out is not None:
        written = write_groups_json(result.pipeline_result.groups, groups_out)
        print(f"wrote {len(result.pipeline_result.groups)} groups to {written}")
    return 0


def _command_match(args: argparse.Namespace) -> int:
    try:
        spec = ExperimentSpec(
            dataset=str(args.dataset),
            kind=args.kind,
            model=args.model,
            epochs=args.epochs,
            seed=args.seed,
            pipeline=PipelineSpec(
                runtime=RuntimeSpec(
                    workers=args.workers,
                    batch_size=args.batch_size,
                    executor=args.executor,
                    blocking_shards=args.blocking_shards,
                    profile_cache=args.profile_cache,
                    columnar_dispatch=args.columnar_dispatch,
                    warm_pool=args.warm_pool,
                    trace=args.trace,
                ),
            ),
        )
    except SpecValidationError as error:
        # Flags map 1:1 onto spec keys (e.g. --model -> experiment.model),
        # so the named-key message pinpoints the offending flag.
        print(f"error: {error}", file=sys.stderr)
        return 2
    return _run_spec(spec, args.dataset)


def _flag_overrides(args: argparse.Namespace) -> dict:
    """The runtime flags the user explicitly typed (``None`` = untouched)."""
    return {
        key: value
        for key in _RUNTIME_FLAG_KEYS
        if (value := getattr(args, key)) is not None
    }


def _apply_runtime_overrides(
    spec: ExperimentSpec, args: argparse.Namespace
) -> ExperimentSpec:
    """Overlay explicitly-typed runtime flags on a loaded spec.

    Precedence: a flag the user passed beats the spec file's
    ``[pipeline.runtime]`` value, which beats the library default — flags
    left at their ``None`` default never touch the spec.
    """
    overrides = _flag_overrides(args)
    if not overrides:
        return spec
    runtime = replace(spec.pipeline.runtime, **overrides)
    return replace(spec, pipeline=replace(spec.pipeline, runtime=runtime))


def _command_run(args: argparse.Namespace) -> int:
    from repro.api import load_spec

    if not args.config.exists():
        print(f"error: spec file not found: {args.config}", file=sys.stderr)
        return 2
    try:
        spec = _apply_runtime_overrides(load_spec(args.config), args)
    except SpecValidationError as error:
        print(f"error: invalid spec {args.config}: {error}", file=sys.stderr)
        return 2
    dataset_path = args.dataset if args.dataset is not None else (
        Path(spec.dataset) if spec.dataset else None
    )
    if dataset_path is None:
        print(
            f"error: {args.config} sets no experiment.dataset and no "
            "--dataset was given",
            file=sys.stderr,
        )
        return 2
    return _run_spec(spec, dataset_path, groups_out=args.groups_out)


def _command_ingest(args: argparse.Namespace) -> int:
    from repro.api import ingest, load_spec, open_state
    from repro.incremental import MatchStateError, is_state_dir

    spec = None
    if args.config is not None:
        if not args.config.exists():
            print(f"error: spec file not found: {args.config}", file=sys.stderr)
            return 2
        try:
            spec = _apply_runtime_overrides(load_spec(args.config), args)
        except SpecValidationError as error:
            print(f"error: invalid spec {args.config}: {error}", file=sys.stderr)
            return 2

    state_dir = args.state
    if state_dir is None and spec is not None and spec.pipeline.state.dir:
        state_dir = Path(spec.pipeline.state.dir)
    if state_dir is None:
        print(
            "error: no state directory: pass --state or set "
            "[pipeline.state] dir in the spec",
            file=sys.stderr,
        )
        return 2

    missing = [str(path) for path in args.batches if not path.exists()]
    if missing:
        print(f"error: dataset file not found: {missing[0]}", file=sys.stderr)
        return 2

    save = not args.no_save
    autosave = save and (spec is None or spec.pipeline.state.autosave)
    matcher = None
    try:
        if is_state_dir(state_dir):
            if args.train_dataset is not None:
                print(
                    f"error: {state_dir} is already initialised; "
                    "--train-dataset only applies when creating a state "
                    "(use a fresh --state directory to retrain)",
                    file=sys.stderr,
                )
                return 2
            matcher = open_state(state_dir)
            # Engine settings for this invocation (results never depend on
            # them): CLI flags beat the spec's [pipeline.runtime] (when
            # --config is given — note _apply_runtime_overrides already
            # folded the flags in), which beats the stored state's config.
            if spec is not None:
                print(
                    f"using the components stored in {state_dir} (a spec's "
                    "model/blocking sections apply only at state creation; "
                    "[pipeline.runtime] and [pipeline.state] are honoured)"
                )
                runtime = spec.pipeline.runtime.to_runtime_config()
            else:
                runtime = _runtime_override_config(matcher, args)
            if runtime is not None:
                from repro.runtime import PipelineRuntime

                matcher.runtime = PipelineRuntime(runtime)
        else:
            if spec is None:
                print(
                    f"error: {state_dir} is not an initialised match state; "
                    "pass --config to create one",
                    file=sys.stderr,
                )
                return 2
            matcher = open_state(
                state_dir,
                spec=spec,
                train_dataset=args.train_dataset,
                save=save,
            )
            print(
                f"initialised match state at {state_dir} "
                f"(matcher {type(matcher.state.matcher).__name__}, blocking "
                f"{[part.name for part in matcher.state.blocking.partition()]})"
            )
        for batch_path in args.batches:
            report = ingest(matcher, batch_path, save=False)
            print(
                f"ingested {batch_path}: +{report.num_new_records} records "
                f"(total {report.num_records}), scored "
                f"{report.pairs_scored}/{report.num_candidates} pairs "
                f"({report.pairs_reused} cached), recleaned "
                f"{report.components_recleaned}/{report.components_total} "
                f"components ({report.components_reused} untouched), "
                f"{len(matcher.groups)} groups"
            )
            if autosave:
                matcher.save(state_dir)
        if save and not autosave:
            matcher.save(state_dir)
    except (MatchStateError, SpecValidationError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        # The warm pool deliberately stays live *across* the batch loop (the
        # whole point of this command's speed), released once here.
        if matcher is not None:
            matcher.close()
    if args.groups_out is not None:
        written = write_groups_json(matcher.groups, args.groups_out)
        print(f"wrote {len(matcher.groups)} groups to {written}")
    return 0


def _runtime_override_config(matcher, args: argparse.Namespace):
    """RuntimeConfig from explicitly-typed flags over the stored settings."""
    overrides = _flag_overrides(args)
    if not overrides:
        return None
    return replace(matcher.state.runtime_config, **overrides)


def _command_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        RULES,
        RegistryError,
        run_paths,
        rule_names,
        write_baseline,
    )

    if args.list_rules:
        for name in rule_names():
            print(f"{name}: {RULES.get(name).description}")
        return 0
    paths = list(args.paths) if args.paths else [Path("src")]
    select = [n.strip() for n in args.select.split(",") if n.strip()] if args.select else None
    ignore = [n.strip() for n in args.ignore.split(",") if n.strip()] if args.ignore else None
    try:
        result = run_paths(paths, select=select, ignore=ignore, baseline=args.baseline)
    except (RegistryError, FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.write_baseline is not None:
        written = write_baseline(result.findings, args.write_baseline)
        print(f"wrote {len(result.findings)} finding(s) to baseline {written}")
        return 0
    if args.output_format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    else:
        for finding in result.findings:
            print(finding.format_text())
        summary = (
            f"{len(result.findings)} finding(s) in {result.files_checked} "
            f"file(s) ({result.suppressed} suppressed)"
        )
        print(summary if result.findings else f"clean: {summary}")
    return 1 if result.findings else 0


def _command_report(args: argparse.Namespace) -> int:
    from repro.obs import (
        TraceFormatError,
        chrome_trace,
        read_trace_jsonl,
        render_trace_report,
    )

    if not args.trace.exists():
        print(f"error: trace file not found: {args.trace}", file=sys.stderr)
        return 2
    try:
        trace = read_trace_jsonl(args.trace)
    except TraceFormatError as error:
        print(f"error: invalid trace {args.trace}: {error}", file=sys.stderr)
        return 2
    print(render_trace_report(trace))
    if args.chrome is not None:
        args.chrome.parent.mkdir(parents=True, exist_ok=True)
        payload = chrome_trace(trace)
        args.chrome.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(
            f"wrote {len(payload['traceEvents'])} trace events to {args.chrome}"
        )
    return 0


def _command_state(args: argparse.Namespace) -> int:
    from repro.incremental import MatchStateError, read_manifest

    if args.state_command == "show":
        try:
            manifest = read_manifest(args.state_dir)
        except MatchStateError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"Match state — {args.state_dir}")
        for key in (
            "format", "format_version", "name", "num_records", "num_ingests",
            "num_candidates", "num_decisions", "num_groups",
            "cleanup_strategy", "blocking_parts", "matcher_type",
        ):
            print(f"  {key}: {manifest.get(key)}")
        if args.groups_out is not None:
            from repro.incremental import IncrementalMatcher

            matcher = IncrementalMatcher.load(args.state_dir)
            written = write_groups_json(matcher.groups, args.groups_out)
            print(f"wrote {len(matcher.groups)} groups to {written}")
        return 0
    raise ValueError(f"unknown state subcommand: {args.state_command!r}")


_COMMANDS = {
    "generate": _command_generate,
    "stats": _command_stats,
    "match": _command_match,
    "run": _command_run,
    "ingest": _command_ingest,
    "lint": _command_lint,
    "report": _command_report,
    "state": _command_state,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        from repro.obs import configure_cli_logging

        configure_cli_logging(args.verbose)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
