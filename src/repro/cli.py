"""Command-line interface.

A small operational front-end over the library, mirroring what the paper's
accompanying code exposes:

* ``repro generate`` — generate the synthetic companies / securities
  benchmark (optionally the WDC-Products-style dataset) and write CSVs,
* ``repro stats`` — print the Table 1 statistics of a dataset CSV,
* ``repro match`` — run the end-to-end entity group matching experiment on a
  generated dataset and print the three-stage scores (a Table 4 row).

Installed as ``repro`` (see ``pyproject.toml``) or runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from collections.abc import Sequence

from repro.datagen import GenerationConfig, dataset_statistics, generate_benchmark
from repro.datagen.io import read_dataset_csv, write_dataset_csv
from repro.datagen.wdc import WdcConfig, generate_wdc_products
from repro.evaluation import format_table
from repro.evaluation.experiment import EntityGroupMatchingExperiment, ExperimentConfig
from repro.runtime import EXECUTOR_KINDS, RuntimeConfig


def positive_int(text: str) -> int:
    """Argparse type for strictly positive integers (workers, batch sizes)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testability)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraLMatch reproduction: entity group matching tooling",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate the synthetic multi-source benchmark datasets"
    )
    generate.add_argument("--entities", type=int, default=1_000,
                          help="number of company record groups to generate")
    generate.add_argument("--sources", type=int, default=5,
                          help="number of data sources")
    generate.add_argument("--seed", type=int, default=0, help="generation seed")
    generate.add_argument("--wdc", action="store_true",
                          help="also generate the WDC-Products-style dataset")
    generate.add_argument("--output-dir", type=Path, default=Path("data"),
                          help="directory the CSV files are written to")

    stats = subparsers.add_parser(
        "stats", help="print Table 1 statistics for a dataset CSV"
    )
    stats.add_argument("dataset", type=Path, help="path to a dataset CSV")

    match = subparsers.add_parser(
        "match", help="run the end-to-end entity group matching experiment"
    )
    match.add_argument("dataset", type=Path, help="path to a dataset CSV")
    match.add_argument("--kind", choices=["companies", "securities", "products"],
                       default="companies", help="dataset kind (selects the blocking recipe)")
    match.add_argument("--model", default="distilbert-128-all",
                       help="model spec name (see repro.matching.models.MODEL_SPECS)")
    match.add_argument("--epochs", type=int, default=3, help="fine-tuning epochs")
    match.add_argument("--seed", type=int, default=0, help="split / sampling seed")
    match.add_argument("--workers", type=positive_int, default=1,
                       help="execution-engine worker slots (1 = serial engine)")
    match.add_argument("--batch-size", type=positive_int, default=2048,
                       help="candidate pairs per pairwise-inference chunk")
    match.add_argument("--executor", choices=list(EXECUTOR_KINDS), default="process",
                       help="worker pool flavour used when --workers > 1")
    return parser


def _command_generate(args: argparse.Namespace) -> int:
    config = GenerationConfig(
        num_entities=args.entities, num_sources=args.sources, seed=args.seed
    )
    benchmark = generate_benchmark(config)
    output_dir = args.output_dir
    companies_path = write_dataset_csv(benchmark.companies, output_dir / "companies.csv")
    securities_path = write_dataset_csv(benchmark.securities, output_dir / "securities.csv")
    print(f"wrote {len(benchmark.companies)} company records to {companies_path}")
    print(f"wrote {len(benchmark.securities)} security records to {securities_path}")
    if args.wdc:
        wdc = generate_wdc_products(WdcConfig(num_entities=max(args.entities // 2, 10),
                                              seed=args.seed))
        wdc_path = write_dataset_csv(wdc, output_dir / "wdc_products.csv")
        print(f"wrote {len(wdc)} product records to {wdc_path}")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    if not args.dataset.exists():
        print(f"error: dataset file not found: {args.dataset}", file=sys.stderr)
        return 2
    dataset = read_dataset_csv(args.dataset)
    row = dataset_statistics(dataset).as_row()
    print(format_table([row], title=f"Dataset statistics — {dataset.name}"))
    return 0


def _command_match(args: argparse.Namespace) -> int:
    if not args.dataset.exists():
        print(f"error: dataset file not found: {args.dataset}", file=sys.stderr)
        return 2
    dataset = read_dataset_csv(args.dataset)
    config = ExperimentConfig(
        model=args.model,
        dataset_kind=args.kind,
        num_epochs=args.epochs,
        seed=args.seed,
        runtime=RuntimeConfig(
            workers=args.workers,
            batch_size=args.batch_size,
            executor=args.executor,
        ),
    )
    experiment = EntityGroupMatchingExperiment(dataset, config)
    result = experiment.run()
    print(format_table([result.as_row()], title="Entity group matching result"))
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "stats": _command_stats,
    "match": _command_match,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
