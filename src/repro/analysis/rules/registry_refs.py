"""Registry-consistency rule: names in specs must resolve.

The declarative layer references components *by name* — the Table 2
recipes (:data:`repro.specs.pipeline.BLOCKING_RECIPES`), example spec
files, direct ``BLOCKINGS.create("...")`` calls.  A renamed or unregistered
component turns those references into runtime ``RegistryError``s; this rule
resolves every statically-visible name against the live registries at lint
time instead.

Two input shapes are checked:

* **Python sources** — string literals inside ``BLOCKING_RECIPES``
  assignments and literal first arguments of
  ``BLOCKINGS/MATCHERS/CLEANUPS .create(...)`` / ``.get(...)`` calls,
* **spec data files** (``checks_data``) — ``.toml`` / ``.json`` files whose
  top level looks like an experiment/pipeline spec: blocking names, the
  clean-up strategy, the experiment kind and the model-zoo name.  Files
  that are not spec-shaped (benchmark results, arbitrary JSON) are skipped
  silently.
"""

from __future__ import annotations

import ast
from collections.abc import Mapping

from repro.analysis.engine import LintRule
from repro.analysis.registry import register_rule
from repro.analysis.rules import literal_str

_REGISTRY_VARS = frozenset({"BLOCKINGS", "MATCHERS", "CLEANUPS"})
_LOOKUP_METHODS = frozenset({"create", "get"})


def _registries() -> dict[str, object]:
    # Imported lazily: the rule must not force component imports on engine
    # start-up (mirrors the registries' own lazy-builtins discipline).
    from repro import registry

    return {
        "BLOCKINGS": registry.BLOCKINGS,
        "MATCHERS": registry.MATCHERS,
        "CLEANUPS": registry.CLEANUPS,
    }


@register_rule("registry-consistency")
class RegistryConsistencyRule(LintRule):
    """Statically-visible component names must resolve against the registries."""

    name = "registry-consistency"
    description = (
        "component names in BLOCKING_RECIPES, registry lookups and example "
        "spec files must resolve against the live component registries"
    )
    checks_data = True

    # -- Python sources -----------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if not any(
            isinstance(target, ast.Name) and target.id == "BLOCKING_RECIPES"
            for target in node.targets
        ):
            return
        blockings = _registries()["BLOCKINGS"]
        for call in ast.walk(node.value):
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Name)
                and call.func.id == "ComponentSpec"
            ):
                continue
            name = None
            if call.args:
                name = literal_str(call.args[0])
            for keyword in call.keywords:
                if keyword.arg == "name":
                    name = literal_str(keyword.value)
            if name is not None and name not in blockings:
                self.report(
                    call,
                    f"BLOCKING_RECIPES references blocking {name!r}, which "
                    f"is not registered (registered: "
                    f"{', '.join(blockings.names())})",
                )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _LOOKUP_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in _REGISTRY_VARS
        ):
            return
        name = literal_str(node.args[0]) if node.args else None
        if name is None:
            return
        registry = _registries()[func.value.id]
        if name not in registry:
            self.report(
                node,
                f"{func.value.id}.{func.attr}({name!r}) cannot resolve: "
                f"not registered (registered: {', '.join(registry.names())})",
            )

    # -- spec data files ----------------------------------------------------

    def check_data(self) -> None:
        data = self.context.data
        if not isinstance(data, Mapping):
            return
        if not ({"experiment", "pipeline"} & set(data)):
            return  # not a spec file — benchmark results, arbitrary JSON, ...
        self._check_pipeline(data.get("pipeline"))
        self._check_experiment(data.get("experiment"))

    def _add(self, message: str) -> None:
        assert self.context is not None
        self.context.add(self.name, 1, 1, message)

    def _check_pipeline(self, pipeline: object) -> None:
        if not isinstance(pipeline, Mapping):
            return
        registries = _registries()
        blockings = registries["BLOCKINGS"]
        for entry in pipeline.get("blocking", ()):
            if isinstance(entry, Mapping):
                name = entry.get("name")
                if isinstance(name, str) and name not in blockings:
                    self._add(
                        f"pipeline.blocking references blocking {name!r}, "
                        f"which is not registered (registered: "
                        f"{', '.join(blockings.names())})"
                    )
        cleanup = pipeline.get("cleanup")
        if isinstance(cleanup, Mapping):
            strategy = cleanup.get("strategy")
            cleanups = registries["CLEANUPS"]
            if isinstance(strategy, str) and strategy not in cleanups:
                self._add(
                    f"pipeline.cleanup.strategy {strategy!r} is not a "
                    f"registered clean-up (registered: "
                    f"{', '.join(cleanups.names())})"
                )

    def _check_experiment(self, experiment: object) -> None:
        if not isinstance(experiment, Mapping):
            return
        kind = experiment.get("kind")
        if isinstance(kind, str):
            from repro.specs.pipeline import BLOCKING_RECIPES

            if kind not in BLOCKING_RECIPES:
                self._add(
                    f"experiment.kind {kind!r} has no blocking recipe "
                    f"(known kinds: {', '.join(sorted(BLOCKING_RECIPES))})"
                )
        model = experiment.get("model")
        if isinstance(model, str):
            from repro.matching.models import MODEL_SPECS

            if model not in MODEL_SPECS:
                self._add(
                    f"experiment.model {model!r} is not in the model zoo "
                    f"(known models: {', '.join(sorted(MODEL_SPECS))})"
                )

