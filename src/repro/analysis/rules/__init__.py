"""Built-in lint rules plus the small AST helpers they share.

Each sibling module groups the rules guarding one contract family:

* :mod:`~repro.analysis.rules.determinism` — byte-identical determinism
  (``unordered-iteration``, ``nondeterminism-sources``),
* :mod:`~repro.analysis.rules.protocol` — the flag-gated two-phase
  protocols (``protocol-conformance``),
* :mod:`~repro.analysis.rules.concurrency` — worker-pool safety
  (``pool-payload-picklability``, ``lock-coverage``),
* :mod:`~repro.analysis.rules.registry_refs` — name resolution against the
  component registries (``registry-consistency``),
* :mod:`~repro.analysis.rules.hygiene` — library output discipline
  (``print-in-library``),
* :mod:`~repro.analysis.rules.observability` — clock discipline for the
  tracing layer (``obs-clock-discipline``).

Modules are imported lazily by the rule registry
(:data:`repro.analysis.registry.RULES`), so importing this package does not
register anything by itself.
"""

from __future__ import annotations

import ast

__all__ = ["dotted_name", "literal_str"]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def literal_str(node: ast.AST) -> str | None:
    """The value of a string-literal node, ``None`` otherwise."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
