"""Determinism rules: the contracts behind the byte-identical guarantee.

Every golden suite in this repository pins byte-identical output across
serial/thread/process engines, shard counts and ingest partitions.  The two
rules here catch the two ways that guarantee has actually been broken (or
nearly broken) before:

* ``unordered-iteration`` — the PYTHONHASHSEED class of bug: iterating a
  ``set`` (hash order) or a dict view (insertion order, which is only as
  deterministic as the insertions) in a package whose outputs are pinned
  byte-for-byte.  The PR 2 clean-up nondeterminism was exactly an unsorted
  graph-adjacency iteration,
* ``nondeterminism-sources`` — wall-clock time, OS entropy, unseeded RNGs,
  ``hash()`` (salted per process for str/bytes) and ``id()``-as-key inside
  pipeline-stage code.  Seeded generators (``random.Random(seed)``,
  ``np.random.default_rng(seed)``) are the sanctioned spelling and pass.

Both rules are deliberately conservative: a site that is deterministic *by
construction* (an insertion-sorted dict, an order-insensitive reduction) is
suppressed inline with a justification comment, turning tribal knowledge
into a reviewable annotation.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import LintRule
from repro.analysis.registry import register_rule
from repro.analysis.rules import dotted_name

#: Packages whose outputs are pinned byte-identically by the golden suites.
DETERMINISM_CRITICAL_PACKAGES = (
    "repro.graphs",
    "repro.blocking",
    "repro.incremental",
    "repro.matching",
)

_DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})
_SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)
_SET_BUILTINS = frozenset({"set", "frozenset"})

#: Sinks whose result cannot depend on element order — iterating an
#: unordered collection into them is safe (``sum`` is *not* here: float
#: addition is order-sensitive at the last ULP).
_ORDER_FREE_SINKS = frozenset(
    {"any", "all", "len", "min", "max", "set", "frozenset", "sorted", "dict"}
)

#: Sinks that materialise or reduce their argument in iteration order.
_ORDER_SENSITIVE_SINKS = frozenset({"list", "tuple", "sum"})

_COMP_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _unordered_reason(node: ast.AST) -> str | None:
    """Why ``node`` evaluates to an unordered iterable (``None`` = ordered)."""
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        # Set-algebra results are only unordered when the operands are sets;
        # integers use the same operators, so require one set-ish side.
        if _unordered_reason(node.left) or _unordered_reason(node.right):
            return "a set-operator result"
        return None
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SET_BUILTINS:
            return f"a {func.id}() result"
        if isinstance(func, ast.Attribute):
            if func.attr in _DICT_VIEW_METHODS:
                return f"a .{func.attr}() view"
            if func.attr in _SET_RETURNING_METHODS:
                return f"a set .{func.attr}() result"
    return None


@register_rule("unordered-iteration")
class UnorderedIterationRule(LintRule):
    """Unsorted iteration over sets/dict views in determinism-critical code."""

    name = "unordered-iteration"
    description = (
        "iteration over a set or dict view without sorted() in a "
        "determinism-critical package (repro.graphs/blocking/incremental/"
        "matching) risks hash- or insertion-order dependent output"
    )
    packages = DETERMINISM_CRITICAL_PACKAGES

    def __init__(self) -> None:
        super().__init__()
        #: Comprehensions appearing directly inside an order-free sink
        #: (``any(... for x in s)``) — their iteration order is immaterial.
        self._order_free: set[int] = set()

    # -- sinks --------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Name):
            return
        if func.id in _ORDER_FREE_SINKS:
            for arg in node.args:
                if isinstance(arg, _COMP_NODES):
                    self._order_free.add(id(arg))
        elif func.id in _ORDER_SENSITIVE_SINKS:
            for arg in node.args:
                reason = _unordered_reason(arg)
                if reason is not None:
                    self.report(
                        arg,
                        f"{func.id}() materialises {reason} in iteration "
                        "order; sort first (or suppress with a "
                        "justification if the order is deterministic by "
                        "construction)",
                    )

    # -- iteration contexts -------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)

    def _visit_comp(self, node: ast.AST) -> None:
        if id(node) in self._order_free:
            return
        for generator in node.generators:
            self._check_iter(generator.iter)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    def _check_iter(self, iterable: ast.AST) -> None:
        reason = _unordered_reason(iterable)
        if reason is not None:
            self.report(
                iterable,
                f"iterating {reason} in a determinism-critical package; "
                "iterate sorted(...) instead (or suppress with a "
                "justification if the order is deterministic by "
                "construction)",
            )


#: Module-global entropy calls, by dotted name.
_BANNED_CALLS = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "a host/time-derived UUID",
    "uuid.uuid4": "a random UUID",
}

#: ``random`` module functions that draw from the *global* (process-seeded)
#: generator.  ``random.Random(seed)`` instances are the sanctioned form.
_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "shuffle", "choice", "choices",
        "sample", "uniform", "getrandbits", "gauss", "normalvariate",
        "betavariate", "seed",
    }
)

#: ``numpy.random`` module-level functions backed by the legacy global state.
_GLOBAL_NP_RANDOM_FUNCS = frozenset(
    {
        "rand", "randn", "randint", "random", "choice", "shuffle",
        "permutation", "standard_normal", "seed",
    }
)


@register_rule("nondeterminism-sources")
class NondeterminismSourcesRule(LintRule):
    """Entropy and process-salted values inside pipeline-stage code."""

    name = "nondeterminism-sources"
    description = (
        "wall-clock time, OS entropy, unseeded RNGs, hash() or id()-as-key "
        "in pipeline-stage code breaks run-to-run reproducibility"
    )
    # Everything that computes pipeline results.  repro.datagen is excluded
    # on purpose: generators are seeded by construction and own their RNG
    # discipline; repro.cli only orchestrates.
    packages = ("repro",)
    exclude_packages = ("repro.datagen", "repro.cli", "repro.analysis")

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted is not None:
            self._check_dotted_call(node, dotted)
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            self.report(
                node,
                "hash() is PYTHONHASHSEED-salted for str/bytes — derive "
                "keys from the value itself (or a stable digest)",
            )

    def _check_dotted_call(self, node: ast.Call, dotted: str) -> None:
        what = _BANNED_CALLS.get(dotted)
        if what is not None:
            self.report(
                node, f"{dotted}() injects {what} into pipeline-stage code"
            )
            return
        if dotted.startswith("secrets."):
            self.report(node, f"{dotted}() draws OS entropy; results cannot be replayed")
            return
        head, _, tail = dotted.rpartition(".")
        if head == "random" and tail in _GLOBAL_RANDOM_FUNCS:
            self.report(
                node,
                f"random.{tail}() uses the process-global generator; use an "
                "explicitly seeded random.Random(seed) instance",
            )
            return
        if head.endswith("random") and head != "random" and tail in _GLOBAL_NP_RANDOM_FUNCS:
            self.report(
                node,
                f"{dotted}() uses numpy's legacy global state; use an "
                "explicitly seeded np.random.default_rng(seed)",
            )
            return
        if tail == "default_rng" and not node.args and not node.keywords:
            self.report(
                node,
                "default_rng() without a seed draws OS entropy; pass an "
                "explicit seed",
            )
            return
        if dotted == "random.Random" and not node.args and not node.keywords:
            self.report(
                node,
                "random.Random() without a seed draws OS entropy; pass an "
                "explicit seed",
            )

    # -- id()-as-key --------------------------------------------------------

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._is_id_call(node.slice):
            self.report(
                node.slice,
                "id() as a mapping key ties results to memory layout; key "
                "by a stable identifier instead",
            )

    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if key is not None and self._is_id_call(key):
                self.report(
                    key,
                    "id() as a dict key ties results to memory layout; key "
                    "by a stable identifier instead",
                )

    @staticmethod
    def _is_id_call(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        )
