"""Clock-discipline rule for the observability layer.

All engine timing flows through :mod:`repro.obs.clock` (a single seam over
``time.perf_counter``) so every measured interval lands on the same
monotonic timeline as the trace recorder's spans — including chunk timings
measured inside worker processes.  A stray ``time.perf_counter()`` /
``time.monotonic()`` call produces numbers that silently bypass the trace:
the run "works" but its spans are incomplete, which is exactly the kind of
drift a docstring cannot prevent.

``repro.obs`` itself and :mod:`repro.runtime.profiler` are the two blessed
call sites (the clock seam and the legacy timings view it feeds).
Everything else — library code, tests, benchmark drivers — must either go
through :func:`repro.obs.clock.now` or carry a justified suppression
(benchmark drivers that measure wall clock *as their artefact* are the
expected suppression case).
"""

from __future__ import annotations

import ast

from repro.analysis.engine import LintRule
from repro.analysis.registry import register_rule
from repro.analysis.rules import dotted_name

#: Raw clock calls that bypass the ``repro.obs.clock`` seam.
_RAW_CLOCK_CALLS = frozenset(
    {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
    }
)


@register_rule("obs-clock-discipline")
class ObsClockDisciplineRule(LintRule):
    """Timing goes through repro.obs.clock so traces stay complete."""

    name = "obs-clock-discipline"
    description = (
        "direct time.perf_counter()/time.monotonic() calls bypass the "
        "repro.obs.clock seam — intervals measured there never reach the "
        "trace; use clock.now() (or suppress with a justification where "
        "wall clock itself is the artefact)"
    )
    packages = None  # every module: the trace is only as complete as its inputs
    exclude_packages = ("repro.obs", "repro.runtime.profiler")

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted in _RAW_CLOCK_CALLS:
            self.report(
                node,
                f"{dotted}() bypasses repro.obs.clock — timing measured "
                "here never reaches the trace; use clock.now() instead",
            )
