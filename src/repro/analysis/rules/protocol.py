"""Protocol-conformance rule: flags and methods must move together.

The execution engine dispatches on *class-level capability flags*:
``shardable`` gates the two-phase blocking protocol
(:meth:`~repro.blocking.base.Blocking.prepare` /
:meth:`~repro.blocking.base.Blocking.candidates_for`), ``delta_capable``
gates incremental index updates
(:meth:`~repro.blocking.base.Blocking.delta_update`), and
``profile_capable`` gates profiled inference
(:meth:`~repro.matching.base.PairwiseMatcher.prepare_profiles` /
``decide_profiled``), and ``columnar_capable`` gates vectorised phase-2
scoring over the columnar profile store
(:meth:`~repro.matching.base.PairwiseMatcher.score_profiled`).  A flag set
without the methods fails at *fan-out time* deep inside a worker; methods
implemented without the flag silently never run.  Both drifts are
statically visible, so this rule catches them at lint time.

The module also exposes :func:`analyze_class` /
:class:`ClassProtocolInfo` — the same analysis the registry↔lint
cross-check test uses to compare AST-declared capabilities against the
runtime flags of every registered component.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.engine import LintRule
from repro.analysis.registry import register_rule

#: flag -> methods the engine calls when the flag is truthy.
PROTOCOL_METHODS: dict[str, tuple[str, ...]] = {
    "shardable": ("prepare", "candidates_for"),
    "delta_capable": ("delta_update",),
    "profile_capable": ("prepare_profiles", "decide_profiled"),
    "columnar_capable": ("score_profiled",),
}

#: Protocol methods with a working default implementation — overriding one
#: still implies the flag (inverse check) but absence is never an error.
OPTIONAL_PROTOCOL_METHODS: dict[str, str] = {
    "decide_profiled_batches": "profile_capable",
}

#: flag -> the flag it presupposes: the dependent protocol only makes sense
#: inside the base one (``score_profiled`` consumes the store
#: ``prepare_profiles`` builds, so columnar scoring without the profiled
#: protocol can never be dispatched by the engine).
FLAG_REQUIRES: dict[str, str] = {
    "columnar_capable": "profile_capable",
}

#: method -> flag, for the inverse (method-without-flag) check.
_METHOD_TO_FLAG: dict[str, str] = {
    method: flag
    for flag, methods in PROTOCOL_METHODS.items()
    for method in methods
}
_METHOD_TO_FLAG.update(OPTIONAL_PROTOCOL_METHODS)

#: The inverse check only fires when a base-class name hints that the class
#: actually participates in the protocol family — ``prepare`` is a common
#: method name, and e.g. ``ProfileStore.prepare`` has nothing to do with the
#: shardable protocol.
_FLAG_BASE_HINTS: dict[str, tuple[str, ...]] = {
    "shardable": ("Blocking",),
    "delta_capable": ("Blocking",),
    "profile_capable": ("Matcher",),
    "columnar_capable": ("Matcher",),
}


@dataclass
class ClassProtocolInfo:
    """What one class body statically declares about the protocols."""

    name: str
    node: ast.ClassDef
    #: flag -> value assigned in the class body (only literal True/False).
    flags: dict[str, bool] = field(default_factory=dict)
    #: flag -> the assignment node (for finding positions).
    flag_nodes: dict[str, ast.stmt] = field(default_factory=dict)
    #: Protocol methods with a real body defined directly in the class.
    implemented: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: Protocol methods defined as stubs (docstring + raise / ``...``).
    stubs: set[str] = field(default_factory=set)
    base_names: tuple[str, ...] = ()


def _is_stub(fn: ast.FunctionDef) -> bool:
    """A body that only raises / passes — the protocol's *definition*, not an
    implementation (``Blocking.prepare`` raising NotImplementedError)."""
    for decorator in fn.decorator_list:
        name = decorator.attr if isinstance(decorator, ast.Attribute) else (
            decorator.id if isinstance(decorator, ast.Name) else None
        )
        if name == "abstractmethod":
            return True
    body = list(fn.body)
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
        body = body[1:]  # drop the docstring
    return all(
        isinstance(stmt, (ast.Raise, ast.Pass))
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in body
    ) if body else True


def analyze_class(node: ast.ClassDef) -> ClassProtocolInfo:
    """Extract the protocol declarations of one class body."""
    info = ClassProtocolInfo(name=node.name, node=node)
    info.base_names = tuple(
        base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        for base in node.bases
    )
    for stmt in node.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id in PROTOCOL_METHODS
                and isinstance(value, ast.Constant)
                and isinstance(value.value, bool)
            ):
                info.flags[target.id] = value.value
                info.flag_nodes[target.id] = stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name in _METHOD_TO_FLAG:
                if _is_stub(stmt):
                    info.stubs.add(stmt.name)
                else:
                    info.implemented[stmt.name] = stmt
    return info


@register_rule("protocol-conformance")
class ProtocolConformanceRule(LintRule):
    """Capability flags and protocol methods must be declared together."""

    name = "protocol-conformance"
    description = (
        "a class setting shardable/delta_capable/profile_capable/"
        "columnar_capable = True must implement the protocol's methods in "
        "its body, and vice versa; columnar_capable additionally "
        "presupposes profile_capable"
    )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        info = analyze_class(node)
        self._check_flags_have_methods(info)
        self._check_flag_dependencies(info)
        self._check_methods_have_flags(info)

    def _check_flags_have_methods(self, info: ClassProtocolInfo) -> None:
        for flag, value in info.flags.items():
            if not value:
                continue
            required = PROTOCOL_METHODS[flag]
            missing = [m for m in required if m not in info.implemented]
            if missing:
                self.report(
                    info.flag_nodes[flag],
                    f"class {info.name} sets {flag} = True but does not "
                    f"implement {', '.join(m + '()' for m in missing)} — "
                    f"the {flag} protocol requires "
                    f"{', '.join(m + '()' for m in required)} in the class "
                    "body (inherited implementations are invisible to "
                    "static analysis; restate or suppress)",
                )

    def _check_flag_dependencies(self, info: ClassProtocolInfo) -> None:
        for flag, required in FLAG_REQUIRES.items():
            if info.flags.get(flag) is not True:
                continue
            if info.flags.get(required) is True:
                continue
            self.report(
                info.flag_nodes[flag],
                f"class {info.name} sets {flag} = True without "
                f"{required} = True — the {flag} protocol only runs inside "
                f"the {required} one (the engine dispatches "
                f"{', '.join(m + '()' for m in PROTOCOL_METHODS[flag])} "
                "against the prepared profile store); declare "
                f"{required} = True in the class body (inherited flags are "
                "invisible to static analysis; restate or suppress)",
            )

    def _check_methods_have_flags(self, info: ClassProtocolInfo) -> None:
        for method, fn in info.implemented.items():
            flag = _METHOD_TO_FLAG[method]
            declared = info.flags.get(flag)
            if declared is True:
                continue
            if method in OPTIONAL_PROTOCOL_METHODS and any(
                required in info.stubs for required in PROTOCOL_METHODS[flag]
            ):
                # The protocol-defining base class: the required methods are
                # stubs and the optional method carries the default
                # implementation (e.g. PairwiseMatcher.decide_profiled_batches).
                continue
            if declared is False:
                self.report(
                    fn,
                    f"class {info.name} implements {method}() but sets "
                    f"{flag} = False — the engine will never call it; set "
                    "the flag or drop the method",
                )
                continue
            hints = _FLAG_BASE_HINTS[flag]
            if any(hint in base for base in info.base_names for hint in hints):
                self.report(
                    fn,
                    f"class {info.name} implements the {flag}-protocol "
                    f"method {method}() without setting {flag} = True in "
                    "its body — restate the flag so the declaration and "
                    "the implementation cannot drift (inherited flags are "
                    "invisible to static analysis)",
                )
