"""Worker-pool safety rules.

* ``pool-payload-picklability`` — everything that flows into the pool
  (:meth:`WorkerPool.publish` payloads, ``executor.submit`` task functions,
  ``map_chunks`` chunk functions) crosses a process boundary and must be
  picklable.  Lambdas and locally-defined functions are not (pickle locates
  functions by qualified name); today they fail at fan-out time, deep
  inside a worker traceback — this rule fails them at lint time.
* ``lock-coverage`` — the SNIPPETS.md Snippet 2 idiom, verified: once a
  class protects an attribute with ``with self._lock:`` somewhere, every
  mutation of that attribute must hold the lock (``__init__`` excepted —
  construction is single-threaded by definition).  Half-locked state is
  worse than unlocked state: it reads as thread-safe and is not.

Both rules are conservative approximations of dynamic facts; call sites
that are provably safe (thread-pool-only payloads, helpers whose callers
hold the lock) carry inline suppressions with a justification.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.engine import LintRule
from repro.analysis.registry import register_rule
from repro.analysis.rules import dotted_name

#: Method names whose arguments become worker-pool payloads.
_PAYLOAD_SINKS = frozenset({"publish", "submit", "map_chunks"})


@dataclass
class _Frame:
    """One lexical scope: tracks names bound to unpicklable callables."""

    is_function: bool
    unpicklable: set[str] = field(default_factory=set)


@register_rule("pool-payload-picklability")
class PoolPayloadPicklabilityRule(LintRule):
    """Lambdas / nested functions must not flow into pool submissions."""

    name = "pool-payload-picklability"
    description = (
        "lambdas and locally-defined functions passed to WorkerPool.publish,"
        " executor.submit or map_chunks cannot be pickled to process workers"
    )

    def __init__(self) -> None:
        super().__init__()
        self._frames: list[_Frame] = []

    def begin_module(self) -> None:
        self._frames = [_Frame(is_function=False)]

    # -- scope tracking -----------------------------------------------------

    def _visit_functiondef(self, node: ast.AST) -> None:
        if self._frames[-1].is_function:
            self._frames[-1].unpicklable.add(node.name)
        self._frames.append(_Frame(is_function=True))

    def _leave_scope(self, node: ast.AST) -> None:
        self._frames.pop()

    visit_FunctionDef = _visit_functiondef
    visit_AsyncFunctionDef = _visit_functiondef
    leave_FunctionDef = _leave_scope
    leave_AsyncFunctionDef = _leave_scope

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Class bodies are their own (non-capturing) scope; methods of a
        # module-level class pickle fine, so nothing is recorded for them.
        self._frames.append(_Frame(is_function=False))

    leave_ClassDef = _leave_scope

    def visit_Assign(self, node: ast.Assign) -> None:
        # ``f = lambda ...`` is unpicklable at *any* level: pickle resolves
        # functions via __qualname__, which stays "<lambda>".
        if isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._frames[-1].unpicklable.add(target.id)

    # -- the sink check -----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _PAYLOAD_SINKS):
            return
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            self._check_payload(arg, func.attr)

    def _check_payload(self, arg: ast.AST, sink: str) -> None:
        if isinstance(arg, ast.Lambda):
            self.report(
                arg,
                f"lambda passed to {sink}() — pool payloads must be "
                "picklable; use a module-level function (functools.partial "
                "over one is fine)",
            )
            return
        if isinstance(arg, ast.Name) and self._is_unpicklable_name(arg.id):
            self.report(
                arg,
                f"locally-defined function {arg.id!r} passed to {sink}() — "
                "pool payloads must be picklable; move it to module level",
            )
            return
        if isinstance(arg, ast.Call):
            dotted = dotted_name(arg.func)
            if dotted in ("partial", "functools.partial") and arg.args:
                # partial(...) pickles iff its wrapped function does.
                self._check_payload(arg.args[0], sink)

    def _is_unpicklable_name(self, name: str) -> bool:
        return any(name in frame.unpicklable for frame in reversed(self._frames))


@dataclass
class _Mutation:
    attr: str
    node: ast.AST
    method: str
    locked: bool


@dataclass
class _ClassLockInfo:
    name: str
    mutations: list[_Mutation] = field(default_factory=list)
    #: lock attribute name(s) seen in ``with self.<lock>:`` items.
    locks: set[str] = field(default_factory=set)


#: Call-method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append", "extend", "add", "update", "clear", "pop", "popitem",
        "remove", "discard", "insert", "setdefault",
    }
)

#: Methods where unlocked mutation is fine: the object is not shared yet
#: (or is being torn down by its only owner).
_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


@register_rule("lock-coverage")
class LockCoverageRule(LintRule):
    """Attributes guarded by ``with self._lock:`` must always be guarded."""

    name = "lock-coverage"
    description = (
        "an attribute mutated under `with self._lock:` somewhere must hold "
        "the lock at every mutation site (outside __init__)"
    )

    def __init__(self) -> None:
        super().__init__()
        self._classes: list[_ClassLockInfo] = []
        self._methods: list[str] = []
        self._lock_depth = 0
        self._lock_withs: set[int] = set()

    # -- scope tracking -----------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._classes.append(_ClassLockInfo(name=node.name))

    def leave_ClassDef(self, node: ast.ClassDef) -> None:
        self._analyze(self._classes.pop())

    def _visit_functiondef(self, node: ast.AST) -> None:
        self._methods.append(node.name)

    def _leave_functiondef(self, node: ast.AST) -> None:
        self._methods.pop()

    visit_FunctionDef = _visit_functiondef
    visit_AsyncFunctionDef = _visit_functiondef
    leave_FunctionDef = _leave_functiondef
    leave_AsyncFunctionDef = _leave_functiondef

    def _visit_with(self, node: ast.AST) -> None:
        for item in node.items:
            attr = self._self_lock_attr(item.context_expr)
            if attr is not None:
                self._lock_depth += 1
                self._lock_withs.add(id(node))
                if self._classes:
                    self._classes[-1].locks.add(attr)
                break

    def _leave_with(self, node: ast.AST) -> None:
        if id(node) in self._lock_withs:
            self._lock_withs.discard(id(node))
            self._lock_depth -= 1

    visit_With = _visit_with
    visit_AsyncWith = _visit_with
    leave_With = _leave_with
    leave_AsyncWith = _leave_with

    @staticmethod
    def _self_lock_attr(node: ast.AST) -> str | None:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and "lock" in node.attr.lower()
        ):
            return node.attr
        return None

    # -- mutation recording -------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_target(node.target, node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_target(target, node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            self._record_target(func.value, node)

    def _record_target(self, target: ast.AST, node: ast.AST) -> None:
        if not self._classes or not self._methods:
            return
        attr = self._self_attr_base(target)
        if attr is None or "lock" in attr.lower():
            return
        self._classes[-1].mutations.append(
            _Mutation(
                attr=attr,
                node=node,
                method=self._methods[-1],
                locked=self._lock_depth > 0,
            )
        )

    @staticmethod
    def _self_attr_base(node: ast.AST) -> str | None:
        """The first attribute of a ``self.x[...].y``-style chain, if any."""
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return node.attr
            node = node.value
        return None

    # -- the analysis -------------------------------------------------------

    def _analyze(self, info: _ClassLockInfo) -> None:
        if not info.locks:
            return
        locked_in: dict[str, str] = {}
        for mutation in info.mutations:
            if mutation.locked:
                locked_in.setdefault(mutation.attr, mutation.method)
        lock_name = "/".join(sorted(info.locks))
        for mutation in info.mutations:
            if (
                not mutation.locked
                and mutation.attr in locked_in
                and mutation.method not in _EXEMPT_METHODS
            ):
                self.report(
                    mutation.node,
                    f"attribute {mutation.attr!r} of {info.name} is written "
                    f"under `with self.{lock_name}:` in "
                    f"{locked_in[mutation.attr]}() but without the lock "
                    f"here in {mutation.method}() — hold the lock for "
                    "every mutation",
                )
