"""Library-output hygiene rule.

``repro`` is a library first: results flow back as values, human-readable
output is owned by the CLI (:mod:`repro.cli`) and the reporting helpers
that *return* formatted strings.  A ``print()`` buried in a pipeline stage
corrupts machine-readable CLI output (``--format json``, ``--groups-out``
diffs) and is invisible to library embedders' logging — as are leftover
``breakpoint()`` / ``pdb.set_trace()`` debugging hooks, which hang
non-interactive runs (CI, worker processes) outright.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import LintRule
from repro.analysis.registry import register_rule
from repro.analysis.rules import dotted_name

_DEBUGGER_CALLS = frozenset({"pdb.set_trace", "ipdb.set_trace"})


@register_rule("print-in-library")
class PrintInLibraryRule(LintRule):
    """No print()/breakpoint() in library code (the CLI owns output)."""

    name = "print-in-library"
    description = (
        "library modules must not print() (return values / raise instead; "
        "the CLI owns human-readable output) or leave debugger hooks behind"
    )
    packages = ("repro",)
    exclude_packages = ("repro.cli",)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "print":
                self.report(
                    node,
                    "print() in library code — return the value or raise; "
                    "only repro.cli talks to stdout",
                )
            elif func.id == "breakpoint":
                self.report(node, "breakpoint() left in library code")
            return
        dotted = dotted_name(func)
        if dotted in _DEBUGGER_CALLS:
            self.report(node, f"{dotted}() left in library code")
