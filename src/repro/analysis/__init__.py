"""``repro lint``: the project-contract static analyser.

An AST-based rule-plugin lint framework that mechanically enforces the
invariants every subsystem of this repository is built on — byte-identical
determinism, the flag-gated two-phase protocols
(``shardable``/``delta_capable``/``profile_capable``), worker-pool payload
picklability and lock coverage, and registry name resolution.  The golden
suites prove these contracts *held on one run*; the linter proves the code
cannot quietly stop honouring them.

Entry points:

* CLI — ``repro lint [paths] [--select/--ignore] [--format text|json]``,
* library — :func:`run_paths` / :func:`run_source`,
* extension — subclass :class:`LintRule` and decorate with
  :func:`register_rule` (the rule registry mirrors :mod:`repro.registry`:
  duplicate names are rejected, unknown names list what is registered).

Findings are suppressed inline with ``# repro-lint: disable=<rule>`` on the
reported line — by convention followed by ``-- <justification>``.
"""

from repro.analysis.engine import (
    LintResult,
    LintRule,
    ModuleContext,
    iter_lintable_files,
    load_baseline,
    module_name_for,
    resolve_rules,
    run_paths,
    run_source,
    write_baseline,
)
from repro.analysis.findings import ENGINE_RULE, Finding
from repro.analysis.registry import RULES, RegistryError, register_rule, rule_names

__all__ = [
    "ENGINE_RULE",
    "Finding",
    "LintResult",
    "LintRule",
    "ModuleContext",
    "RULES",
    "RegistryError",
    "iter_lintable_files",
    "load_baseline",
    "module_name_for",
    "register_rule",
    "resolve_rules",
    "rule_names",
    "run_paths",
    "run_source",
    "write_baseline",
]
