"""The lint engine: one AST walk, many rules, explicit suppressions.

``repro lint`` enforces the contracts the rest of this repository only
states in docstrings — byte-identical determinism, the flag-gated two-phase
protocols, pool-payload picklability — at lint time instead of via golden
-suite archaeology.  The engine owns everything rule-agnostic:

* **visitor dispatch** — the module AST is walked exactly once; every node
  is offered to each active rule's ``visit_<NodeType>`` / ``leave_<NodeType>``
  hooks (the leave hook fires after the node's children, so rules can keep
  class/function/``with``-block stacks),
* **scoping** — a rule declares the dotted package prefixes it applies to
  (``packages`` / ``exclude_packages``); the engine computes each file's
  module name and instantiates only the rules in scope,
* **suppressions** — a ``# repro-lint: disable=rule-a,rule-b`` comment on
  the reported line silences those rules there (``disable=all`` silences
  every rule).  Comments are found with :mod:`tokenize`, so the marker
  inside a string literal is not a suppression.  Unknown rule names in a
  suppression are themselves reported (as ``lint-error``) — a typo'd
  suppression must not look like a fixed finding,
* **baselines** — ``--baseline`` filters findings recorded in a JSON file
  written by ``--write-baseline``, for adopting a rule before paying down
  its backlog.  Keys deliberately ignore line numbers (see
  :meth:`~repro.analysis.findings.Finding.baseline_key`),
* **data files** — rules with ``checks_data = True`` also receive ``.toml``
  / ``.json`` files (declarative specs) through :meth:`LintRule.check_data`.

Rules themselves live in :mod:`repro.analysis.rules` and register through
:mod:`repro.analysis.registry`.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Sequence
from typing import Any

from repro.analysis.findings import ENGINE_RULE, Finding
from repro.analysis.registry import RULES

#: Directories never descended into when a path argument is a directory.
_SKIPPED_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}

#: Comment marker grammar — the marker text, preceded by a hash, with an
#: optional free-form justification after ``--``.  (Spelled indirectly here
#: so this very comment does not register as a suppression.)
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


class LintRule:
    """Base class for lint rules.

    Subclasses set ``name`` (matching their registry name), ``description``
    and optionally the package scope, then implement any of:

    * ``visit_<NodeType>(node)`` / ``leave_<NodeType>(node)`` — called
      during the engine's single AST walk,
    * ``begin_module()`` / ``finish_module()`` — called around the walk
      (``finish_module`` is where whole-module analyses report),
    * ``check_data()`` — called instead of the AST hooks for ``.toml`` /
      ``.json`` inputs when ``checks_data`` is true.

    A fresh rule instance is created per module, so instance attributes are
    safe per-module state.  Findings are reported with :meth:`report`.
    """

    #: Registry name; also what suppression comments and ``--select`` use.
    name: str = ""
    #: One-line summary shown by ``repro lint --list-rules``.
    description: str = ""
    #: Dotted module prefixes this rule runs on (``None`` = every module).
    packages: tuple[str, ...] | None = None
    #: Dotted module prefixes this rule skips even when ``packages`` match.
    exclude_packages: tuple[str, ...] = ()
    #: Whether the rule also checks ``.toml`` / ``.json`` data files.
    checks_data: bool = False

    def __init__(self) -> None:
        self.context: ModuleContext | None = None

    # -- scoping ------------------------------------------------------------

    @classmethod
    def applies_to(cls, module: str) -> bool:
        """Whether this rule is in scope for dotted module name ``module``."""
        if any(_prefix_match(module, prefix) for prefix in cls.exclude_packages):
            return False
        if cls.packages is None:
            return True
        return any(_prefix_match(module, prefix) for prefix in cls.packages)

    # -- reporting ----------------------------------------------------------

    def report(self, node: ast.AST, message: str) -> None:
        """Report a finding at ``node`` (honouring suppression comments)."""
        assert self.context is not None
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        self.context.add(self.name, line, column, message)

    # -- hooks (overridden by rules) ----------------------------------------

    def begin_module(self) -> None:  # pragma: no cover - trivial default
        pass

    def finish_module(self) -> None:  # pragma: no cover - trivial default
        pass

    def check_data(self) -> None:  # pragma: no cover - trivial default
        pass


def _prefix_match(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


@dataclass
class ModuleContext:
    """Everything the engine knows about one file being linted."""

    path: str
    module: str
    source: str = ""
    tree: ast.AST | None = None
    #: Parsed data payload for ``.toml`` / ``.json`` inputs (else ``None``).
    data: Any = None
    findings: list[Finding] = field(default_factory=list)
    #: line number -> rule names silenced on that line.
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    suppressed_count: int = 0

    def add(self, rule: str, line: int, column: int, message: str) -> None:
        silenced = self.suppressions.get(line, ())
        if rule != ENGINE_RULE and ("all" in silenced or rule in silenced):
            self.suppressed_count += 1
            return
        self.findings.append(Finding(self.path, line, column, rule, message))


@dataclass
class LintResult:
    """Outcome of one :func:`run_paths` / :func:`run_source` invocation."""

    findings: list[Finding]
    files_checked: int = 0
    suppressed: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "findings": [finding.to_dict() for finding in self.findings],
            "count": len(self.findings),
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
        }


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path`` (used for rule scoping).

    Files under a ``src`` directory are named from the package root
    (``src/repro/graphs/graph.py`` → ``repro.graphs.graph``); other files
    are named from the working directory (``tests/analysis/test_rules.py``
    → ``tests.analysis.test_rules``).
    """
    resolved = path.resolve().with_suffix("")
    parts = list(resolved.parts)
    if "src" in parts:
        tail = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[tail + 1:]
    else:
        try:
            parts = list(resolved.relative_to(Path.cwd()).parts)
        except ValueError:
            parts = [resolved.name]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _parse_suppressions(
    source: str, context: ModuleContext, known_rules: Iterable[str]
) -> None:
    """Collect ``# repro-lint: disable=...`` comments into the context.

    Uses :mod:`tokenize` so markers inside string literals (e.g. lint-rule
    test fixtures) never register as suppressions.  Unknown rule names are
    reported as engine findings — silencing a rule that does not exist is a
    latent typo, not a clean file.
    """
    known = set(known_rules) | {"all"}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - parse failed
        return
    for line, comment in comments:
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            continue
        names = {name.strip() for name in match.group(1).split(",") if name.strip()}
        unknown = sorted(names - known)
        if unknown:
            context.add(
                ENGINE_RULE,
                line,
                1,
                f"suppression names unknown rule(s) {', '.join(map(repr, unknown))}; "
                f"known rules: {', '.join(sorted(known - {'all'}))}",
            )
        context.suppressions.setdefault(line, set()).update(names & known)


class _Walker:
    """Single-pass AST walker dispatching to every active rule."""

    def __init__(self, rules: Sequence[LintRule]) -> None:
        self._visitors: list[tuple[LintRule, dict[str, Any], dict[str, Any]]] = []
        for rule in rules:
            visit = {}
            leave = {}
            for attr in dir(rule):
                if attr.startswith("visit_"):
                    visit[attr[len("visit_"):]] = getattr(rule, attr)
                elif attr.startswith("leave_"):
                    leave[attr[len("leave_"):]] = getattr(rule, attr)
            self._visitors.append((rule, visit, leave))

    def walk(self, node: ast.AST) -> None:
        kind = type(node).__name__
        for _rule, visit, _leave in self._visitors:
            hook = visit.get(kind)
            if hook is not None:
                hook(node)
        for child in ast.iter_child_nodes(node):
            self.walk(child)
        for _rule, _visit, leave in self._visitors:
            hook = leave.get(kind)
            if hook is not None:
                hook(node)


def resolve_rules(
    select: Sequence[str] | None = None, ignore: Sequence[str] | None = None
) -> list[type[LintRule]]:
    """Resolve ``--select`` / ``--ignore`` names to rule classes.

    Unknown names raise :class:`~repro.registry.RegistryError` listing the
    registered rules, exactly like the component registries do.
    """
    names = list(select) if select else RULES.names()
    ignored = set(ignore or ())
    for name in ignored:
        RULES.get(name)  # validate: unknown names must not silently ignore nothing
    return [RULES.get(name) for name in names if name not in ignored]


def run_source(
    source: str,
    *,
    path: str = "<string>",
    module: str = "module",
    rules: Sequence[type[LintRule]] | None = None,
) -> list[Finding]:
    """Lint one Python source string (the per-rule fixture harness).

    ``module`` controls rule scoping, so tests can present a snippet as
    living in ``repro.graphs`` to trigger package-scoped rules.
    """
    context = ModuleContext(path=path, module=module, source=source)
    _lint_python(source, context, rules if rules is not None else resolve_rules())
    return sorted(context.findings)


def _lint_python(
    source: str, context: ModuleContext, rule_classes: Sequence[type[LintRule]]
) -> None:
    try:
        tree = ast.parse(source, filename=context.path)
    except SyntaxError as error:
        context.add(
            ENGINE_RULE, error.lineno or 1, (error.offset or 0) + 1,
            f"syntax error: {error.msg}",
        )
        return
    context.tree = tree
    _parse_suppressions(source, context, RULES.names())
    active: list[LintRule] = []
    for rule_class in rule_classes:
        if not rule_class.applies_to(context.module):
            continue
        rule = rule_class()
        rule.context = context
        active.append(rule)
    if not active:
        return
    for rule in active:
        rule.begin_module()
    _Walker(active).walk(tree)
    for rule in active:
        rule.finish_module()


def _lint_data(
    path: Path, context: ModuleContext, rule_classes: Sequence[type[LintRule]]
) -> None:
    """Run data-capable rules over a ``.toml`` / ``.json`` spec file."""
    try:
        text = path.read_text(encoding="utf-8")
        if path.suffix.lower() == ".toml":
            import tomllib

            context.data = tomllib.loads(text)
        else:
            context.data = json.loads(text)
    except (OSError, ValueError) as error:
        # Unreadable or malformed data files are only a lint concern when
        # they are spec-shaped; we cannot tell, so report — the suppression
        # story for stray files is "don't pass them".
        context.add(ENGINE_RULE, 1, 1, f"cannot parse data file: {error}")
        return
    for rule_class in rule_classes:
        if not rule_class.checks_data:
            continue
        rule = rule_class()
        rule.context = context
        rule.check_data()


def iter_lintable_files(paths: Sequence[Path]) -> list[Path]:
    """Expand path arguments to the sorted list of files to lint.

    Directories contribute every ``.py``, ``.toml`` and ``.json`` file
    beneath them (skipping caches); explicit file arguments are taken as
    given.  Missing paths raise ``FileNotFoundError``.
    """
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            for pattern in ("*.py", "*.toml", "*.json"):
                for found in path.rglob(pattern):
                    if not _SKIPPED_DIRS.intersection(found.parts):
                        files.append(found)
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(set(files))


def run_paths(
    paths: Sequence[Path],
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    baseline: Path | None = None,
) -> LintResult:
    """Lint files/directories and return the aggregate result.

    ``select`` / ``ignore`` resolve through the rule registry (unknown
    names raise, listing what is registered); ``baseline`` filters findings
    recorded by :func:`write_baseline`.
    """
    rule_classes = resolve_rules(select, ignore)
    findings: list[Finding] = []
    suppressed = 0
    files = iter_lintable_files(paths)
    for file_path in files:
        context = ModuleContext(path=str(file_path), module=module_name_for(file_path))
        if file_path.suffix == ".py":
            try:
                source = file_path.read_text(encoding="utf-8")
            except OSError as error:  # pragma: no cover - unreadable file
                context.add(ENGINE_RULE, 1, 1, f"cannot read file: {error}")
            else:
                context.source = source
                _lint_python(source, context, rule_classes)
        else:
            _lint_data(file_path, context, rule_classes)
        findings.extend(context.findings)
        suppressed += context.suppressed_count
    findings.sort()
    if baseline is not None:
        known = load_baseline(baseline)
        findings = [f for f in findings if f.baseline_key() not in known]
    return LintResult(findings=findings, files_checked=len(files), suppressed=suppressed)


def write_baseline(findings: Sequence[Finding], path: Path) -> Path:
    """Record ``findings`` as the accepted baseline at ``path``."""
    keys = sorted({finding.baseline_key() for finding in findings})
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"findings": keys}, indent=2) + "\n", encoding="utf-8")
    return path


def load_baseline(path: Path) -> frozenset[str]:
    """Load the baseline keys written by :func:`write_baseline`."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise ValueError(f"cannot read lint baseline {path}: {error}") from error
    keys = data.get("findings") if isinstance(data, dict) else None
    if not isinstance(keys, list):
        raise ValueError(
            f"cannot read lint baseline {path}: expected a JSON object with "
            "a 'findings' list"
        )
    return frozenset(str(key) for key in keys)
