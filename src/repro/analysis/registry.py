"""The lint-rule registry: rules are named components, like everything else.

Rules register exactly the way blockings, matchers and clean-ups do
(:mod:`repro.registry`): a decorator, duplicate rejection, and unknown-name
errors that list what *is* registered.  ``repro lint --select`` /
``--ignore`` resolve names through this registry, so a typo'd rule name
fails with the full rule list instead of silently linting nothing.

Third-party rules plug in the same way built-ins do::

    from repro.analysis import LintRule, register_rule

    @register_rule("no-sleep")
    class NoSleepRule(LintRule):
        name = "no-sleep"
        description = "time.sleep() has no place in pipeline stages"

        def visit_Call(self, node): ...
"""

from __future__ import annotations

from repro.registry import ComponentRegistry, RegistryError

__all__ = ["RULES", "RegistryError", "register_rule", "rule_names"]

#: Lint rules by name (see :mod:`repro.analysis.rules`).  Built-in rule
#: modules are imported lazily on first lookup, mirroring the component
#: registries.
RULES = ComponentRegistry(
    "lint rule",
    builtins=(
        "repro.analysis.rules.determinism",
        "repro.analysis.rules.protocol",
        "repro.analysis.rules.concurrency",
        "repro.analysis.rules.registry_refs",
        "repro.analysis.rules.hygiene",
        "repro.analysis.rules.observability",
    ),
)


def register_rule(name: str):
    """Register a :class:`~repro.analysis.engine.LintRule` subclass under ``name``."""
    return RULES.register(name)


def rule_names() -> list[str]:
    """Sorted names of every registered rule."""
    return RULES.names()
