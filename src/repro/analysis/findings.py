"""Lint findings: the one value every rule produces.

A :class:`Finding` pins a rule violation to a file position.  Findings are
plain frozen data so the engine can sort, deduplicate, serialise (``--format
json``) and baseline-filter them without knowing anything about the rules
that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Rule name used for engine-level problems (unparseable files, suppression
#: comments naming unknown rules).  Not a registered rule: it cannot be
#: selected, ignored or suppressed — a broken input must never lint clean.
ENGINE_RULE = "lint-error"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source position (1-based line/column)."""

    path: str
    line: int
    column: int
    rule: str
    message: str

    def format_text(self) -> str:
        """The human-readable ``path:line:col: [rule] message`` form."""
        return f"{self.path}:{self.line}:{self.column}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "message": self.message,
        }

    def baseline_key(self) -> str:
        """Identity used by baseline files.

        Deliberately excludes the line/column so known findings survive
        unrelated edits that shift them around; a message change (different
        attribute, different missing method) is a different finding.
        """
        return f"{self.path}::{self.rule}::{self.message}"
