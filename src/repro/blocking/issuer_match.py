"""Issuer Match blocking (securities only).

"For each security record, consider as candidate pairs those involving all
other securities issued by companies previously matched to the security's
issuer" (Section 5.3.1).  The blocking therefore needs the *result of the
company matching*: a mapping from company record id to its matched company
group.  Securities whose issuers landed in the same company group become
candidates even when they share no identifiers and have generic names.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from collections.abc import Iterable, Mapping, Sequence

from repro.blocking.base import Blocking, BlockingDelta, CandidatePair, dedupe_pairs
from repro.datagen.records import Dataset, Record, SecurityRecord
from repro.registry import register_blocking


@dataclass(frozen=True)
class IssuerGroupIndex:
    """Shared state of the sharded protocol: securities grouped by issuer.

    Groups preserve first-encounter order (the order the serial pair loop
    walks) and each group's security list is in dataset order.
    ``groups_by_owner`` inverts the ownership rule so a chunk only touches
    the groups it owns: it maps each group's *first security* record to the
    group keys it owns, in encounter order, pre-filtered to groups that can
    produce pairs.
    """

    #: issuer group index -> securities issued by that group, dataset order.
    securities_by_group: dict[int, list[SecurityRecord]]
    #: first-security record id -> its owned multi-security groups, in order.
    groups_by_owner: dict[str, list[int]]


@register_blocking("issuer_match")
class IssuerMatchBlocking(Blocking):
    """Candidates among securities whose issuers were matched together."""

    name = "issuer_match"
    shardable = True
    delta_capable = True

    def __init__(
        self,
        issuer_groups: Iterable[Iterable[str]] | None = None,
        issuer_group_of: Mapping[str, int] | None = None,
        cross_source_only: bool = True,
    ) -> None:
        """Either ``issuer_groups`` (an iterable of company-record-id groups,
        e.g. the output of the company pipeline) or a prebuilt
        ``issuer_group_of`` mapping must be provided."""
        if issuer_groups is None and issuer_group_of is None:
            raise ValueError("issuer_groups or issuer_group_of is required")
        if issuer_group_of is not None:
            self._group_of: dict[str, int] = dict(issuer_group_of)
        else:
            self._group_of = {}
            for group_index, group in enumerate(issuer_groups or ()):
                for company_record_id in group:
                    self._group_of[company_record_id] = group_index
        self.cross_source_only = cross_source_only

    def candidate_pairs(self, dataset: Dataset) -> list[CandidatePair]:
        shared = self.prepare(dataset)
        return dedupe_pairs(self.candidates_for(shared, dataset.records))

    def prepare(self, dataset: Dataset) -> IssuerGroupIndex:
        """Group the dataset's securities by matched issuer group, once."""
        securities_by_group: dict[int, list[SecurityRecord]] = defaultdict(list)
        for record in dataset:
            if not isinstance(record, SecurityRecord):
                continue
            if record.issuer_record_id is None:
                continue
            group = self._group_of.get(record.issuer_record_id)
            if group is None:
                continue
            securities_by_group[group].append(record)
        groups_by_owner: dict[str, list[int]] = defaultdict(list)
        for group, securities in securities_by_group.items():  # repro-lint: disable=unordered-iteration -- insertion-ordered: built above in dataset order
            if len(securities) >= 2:
                groups_by_owner[securities[0].record_id].append(group)
        return IssuerGroupIndex(
            securities_by_group=dict(securities_by_group),
            groups_by_owner=dict(groups_by_owner),
        )

    def delta_update(
        self, shared: IssuerGroupIndex, dataset: Dataset, new_records: Sequence[Record]
    ) -> BlockingDelta:
        """Append new securities to their issuer groups, locally.

        The issuer-group mapping is fixed at construction, so a new security
        only ever extends one group's member list (at the end — dataset
        order).  A group's first security never changes; the only dirty
        pre-existing record is the first security of a group that gained a
        member (its emitted pair set grows), which includes the
        one-to-two-members transition that first makes the group an owner.
        """
        securities_by_group = dict(shared.securities_by_group)
        touched_groups: dict[int, None] = {}
        for record in new_records:
            if not isinstance(record, SecurityRecord):
                continue
            if record.issuer_record_id is None:
                continue
            group = self._group_of.get(record.issuer_record_id)
            if group is None:
                continue
            existing = securities_by_group.get(group)
            securities_by_group[group] = (
                [*existing, record] if existing else [record]
            )
            touched_groups.setdefault(group)

        new_ids = {record.record_id for record in new_records}
        groups_by_owner = dict(shared.groups_by_owner)
        dirty: set[str] = set()
        for group in touched_groups:
            securities = securities_by_group[group]
            if len(securities) < 2:
                continue
            owner_id = securities[0].record_id
            # Each security belongs to exactly one issuer group, so an
            # owner's list holds at most its own group.
            groups_by_owner[owner_id] = [group]
            if owner_id not in new_ids:
                dirty.add(owner_id)
        return BlockingDelta(
            shared=IssuerGroupIndex(
                securities_by_group=securities_by_group,
                groups_by_owner=groups_by_owner,
            ),
            dirty_record_ids=frozenset(dirty),
        )

    def candidates_for(
        self, shared: IssuerGroupIndex, records: Sequence[Record]
    ) -> list[CandidatePair]:
        """Emit the pairs of every issuer group *first seen* in the chunk.

        Mirrors :meth:`IdOverlapBlocking.candidates_for`: the serial loop is
        group-major in first-encounter order, so assigning each group to the
        chunk containing its first security keeps chunk concatenation equal
        to the serial stream — walked owner-record by owner-record so each
        chunk costs only its share of the index.
        """
        pairs: list[CandidatePair] = []
        for record in records:
            for group in shared.groups_by_owner.get(record.record_id, ()):
                securities = shared.securities_by_group[group]
                for i, left in enumerate(securities):
                    for right in securities[i + 1:]:
                        if self.cross_source_only and left.source == right.source:
                            continue
                        pairs.append(self._make_pair(left, right))
        return pairs

    @classmethod
    def from_company_groups(
        cls, company_groups: Iterable[Iterable[str]], cross_source_only: bool = True
    ) -> "IssuerMatchBlocking":
        """Build the blocking from the output groups of the company pipeline."""
        return cls(issuer_groups=company_groups, cross_source_only=cross_source_only)

    @classmethod
    def from_ground_truth(cls, companies: Dataset) -> "IssuerMatchBlocking":
        """Build the blocking from the companies' ground-truth groups.

        Useful for tests and for upper-bound ("oracle issuer matching")
        ablations; the real pipeline uses :meth:`from_company_groups` with
        predicted groups.
        """
        return cls(issuer_groups=companies.entity_groups().values())
