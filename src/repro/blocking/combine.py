"""Combination of several blockings (the per-dataset recipes of Table 2)."""

from __future__ import annotations

from collections.abc import Sequence

from repro.blocking.base import Blocking, CandidatePair, dedupe_pairs
from repro.datagen.records import Dataset
from repro.registry import register_blocking


@register_blocking("combined")
class CombinedBlocking(Blocking):
    """Union of the candidate pairs of several blockings.

    Duplicates are removed; when two blockings find the same pair, the pair
    keeps the tag of the blocking listed first (the ID Overlap blocking is
    conventionally listed first, so identifier-supported candidates are never
    mislabelled as token-overlap candidates during the pre-cleanup).
    """

    name = "combined"

    def __init__(self, blockings: Sequence[Blocking]) -> None:
        if not blockings:
            raise ValueError("at least one blocking is required")
        self.blockings = list(blockings)

    def candidate_pairs(self, dataset: Dataset) -> list[CandidatePair]:
        pairs: list[CandidatePair] = []
        for blocking in self.blockings:
            pairs.extend(blocking.candidate_pairs(dataset))
        return dedupe_pairs(pairs)

    def partition(self) -> list[Blocking]:
        """Each member blocking is one independent execution-engine task.

        Record sharding goes through here too: a combined blocking is never
        sharded as a whole (interleaving members per record chunk would
        break the member-major emission order that first-blocking-wins
        de-duplication relies on) — instead the engine shards each *member*
        that is shardable and merges members in declaration order.
        """
        return list(self.blockings)

    def pairs_by_blocking(
        self,
        dataset: Dataset | None = None,
        pairs: Sequence[CandidatePair] | None = None,
    ) -> dict[str, int]:
        """Number of (deduplicated) candidates contributed by each blocking.

        Pass ``pairs`` (the output of an earlier :meth:`candidate_pairs`
        call) to count from it directly; otherwise the blockings run once
        here.  Callers that already hold the candidates should always pass
        them — recomputing candidate generation just for stats reporting
        doubles the blocking cost.
        """
        if pairs is None:
            if dataset is None:
                raise ValueError("either dataset or pairs is required")
            pairs = self.candidate_pairs(dataset)
        counts: dict[str, int] = {}
        for pair in pairs:
            counts[pair.blocking] = counts.get(pair.blocking, 0) + 1
        return counts
