"""Blocking: candidate pair generation.

Evaluating all ``n·(n-1)/2`` record pairs is infeasible, so the entity group
matching experiment first reduces the search space with blockings
(Section 5.3.1):

* :class:`~repro.blocking.id_overlap.IdOverlapBlocking` — pairs sharing an
  identifier (securities) or an associated security ISIN (companies),
* :class:`~repro.blocking.token_overlap.TokenOverlapBlocking` — for every
  record, the top-n records from *other* data sources with the most
  overlapping name tokens,
* :class:`~repro.blocking.issuer_match.IssuerMatchBlocking` — securities
  whose issuers were previously matched (requires a company matching),
* :class:`~repro.blocking.combine.CombinedBlocking` — the union used per
  dataset in Table 2.
"""

from repro.blocking.base import Blocking, CandidatePair
from repro.blocking.id_overlap import IdOverlapBlocking
from repro.blocking.token_overlap import TokenOverlapBlocking
from repro.blocking.issuer_match import IssuerMatchBlocking
from repro.blocking.combine import CombinedBlocking

__all__ = [
    "Blocking",
    "CandidatePair",
    "IdOverlapBlocking",
    "TokenOverlapBlocking",
    "IssuerMatchBlocking",
    "CombinedBlocking",
]
