"""ID Overlap blocking.

Securities: candidate pairs are records that share any non-empty identifier
(ISIN, CUSIP, SEDOL or VALOR).  Companies: candidate pairs are records whose
*associated securities* share an identifier — the generator exposes this as
the per-record ``security_isins`` tuple, mirroring how the paper evaluates
"the companies whose associated securities have a matching identifier".

This blocking is cheap (one inverted index pass) and corresponds to the
industry-standard heuristic; it produces both true matches and the
data-drift false candidates described in Section 3.3.
"""

from __future__ import annotations

from collections import defaultdict

from repro.blocking.base import Blocking, CandidatePair, dedupe_pairs
from repro.datagen.identifiers import SECURITY_ID_FIELDS
from repro.datagen.records import CompanyRecord, Dataset, SecurityRecord
from repro.registry import register_blocking
from repro.text.normalize import normalize_identifier


@register_blocking("id_overlap")
class IdOverlapBlocking(Blocking):
    """Candidate pairs based exclusively on identifier attribute overlap."""

    name = "id_overlap"

    def __init__(self, cross_source_only: bool = True) -> None:
        #: When true (the default), only pairs from different data sources are
        #: produced — within one source identifiers are assumed to be unique.
        self.cross_source_only = cross_source_only

    def candidate_pairs(self, dataset: Dataset) -> list[CandidatePair]:
        index: dict[str, list[str]] = defaultdict(list)
        for record in dataset:
            for value in self._identifier_values(record):
                index[value].append(record.record_id)

        pairs: list[CandidatePair] = []
        for record_ids in index.values():
            if len(record_ids) < 2:
                continue
            for i, left_id in enumerate(record_ids):
                left = dataset.record(left_id)
                for right_id in record_ids[i + 1:]:
                    if left_id == right_id:
                        continue
                    right = dataset.record(right_id)
                    if self.cross_source_only and left.source == right.source:
                        continue
                    pairs.append(self._make_pair(left_id, right_id))
        return dedupe_pairs(pairs)

    @staticmethod
    def _identifier_values(record) -> list[str]:
        values: list[str] = []
        if isinstance(record, SecurityRecord):
            for field in SECURITY_ID_FIELDS:
                normalized = normalize_identifier(getattr(record, field))
                if normalized:
                    # Prefix with the field name so an ISIN can never collide
                    # with a CUSIP that happens to share characters.
                    values.append(f"{field}:{normalized}")
        elif isinstance(record, CompanyRecord):
            for isin in record.security_isins:
                normalized = normalize_identifier(isin)
                if normalized:
                    values.append(f"isin:{normalized}")
        return values
