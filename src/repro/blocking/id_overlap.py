"""ID Overlap blocking.

Securities: candidate pairs are records that share any non-empty identifier
(ISIN, CUSIP, SEDOL or VALOR).  Companies: candidate pairs are records whose
*associated securities* share an identifier — the generator exposes this as
the per-record ``security_isins`` tuple, mirroring how the paper evaluates
"the companies whose associated securities have a matching identifier".

This blocking is cheap (one inverted index pass) and corresponds to the
industry-standard heuristic; it produces both true matches and the
data-drift false candidates described in Section 3.3.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from collections.abc import Sequence

from repro.blocking.base import Blocking, BlockingDelta, CandidatePair, dedupe_pairs
from repro.datagen.identifiers import SECURITY_ID_FIELDS
from repro.datagen.records import CompanyRecord, Dataset, Record, SecurityRecord
from repro.registry import register_blocking
from repro.text.normalize import normalize_identifier


@dataclass(frozen=True)
class IdentifierIndex:
    """Shared state of the sharded protocol: the inverted identifier index.

    ``index`` preserves first-encounter order of the identifier values (the
    order the serial pair loop walks), and each value's record list is in
    dataset order.  ``values_by_owner`` inverts the ownership rule so a
    chunk only touches the values it owns (instead of rescanning the whole
    index per chunk): it maps each value's *first carrier* record to that
    record's values, in encounter order, pre-filtered to values that can
    produce pairs.
    """

    #: prefixed identifier value -> record ids carrying it, dataset order.
    index: dict[str, list[str]]
    #: first-carrier record id -> its owned multi-record values, in order.
    values_by_owner: dict[str, list[str]]
    #: record id -> source name.
    sources: dict[str, str]


@register_blocking("id_overlap")
class IdOverlapBlocking(Blocking):
    """Candidate pairs based exclusively on identifier attribute overlap."""

    name = "id_overlap"
    shardable = True
    delta_capable = True

    def __init__(self, cross_source_only: bool = True) -> None:
        #: When true (the default), only pairs from different data sources are
        #: produced — within one source identifiers are assumed to be unique.
        self.cross_source_only = cross_source_only

    def candidate_pairs(self, dataset: Dataset) -> list[CandidatePair]:
        shared = self.prepare(dataset)
        return dedupe_pairs(self.candidates_for(shared, dataset.records))

    def prepare(self, dataset: Dataset) -> IdentifierIndex:
        """One inverted-index pass over the whole dataset."""
        index: dict[str, list[str]] = defaultdict(list)
        for record in dataset:
            for value in self._identifier_values(record):
                index[value].append(record.record_id)
        values_by_owner: dict[str, list[str]] = defaultdict(list)
        for value, record_ids in index.items():  # repro-lint: disable=unordered-iteration -- insertion-ordered: built above in dataset order
            if len(record_ids) >= 2:
                values_by_owner[record_ids[0]].append(value)
        sources = {record.record_id: record.source for record in dataset}
        return IdentifierIndex(
            index=dict(index),
            values_by_owner=dict(values_by_owner),
            sources=sources,
        )

    def delta_update(
        self, shared: IdentifierIndex, dataset: Dataset, new_records: Sequence[Record]
    ) -> BlockingDelta:
        """Append new carriers to the inverted index, locally.

        Identifier joins are exact-key, so only the values a new record
        carries can change: their record lists gain the new carriers (at the
        end — new records sit at the end of dataset order), and their
        *first-carrier* owner must re-derive its owned-value list (a value
        that just crossed from one carrier to two starts producing pairs).
        A value's first carrier never changes (new records are appended), so
        the only dirty pre-existing records are owners of a value touched by
        a new record — every other record's emission is untouched.
        """
        index = dict(shared.index)
        sources = dict(shared.sources)
        touched_values: dict[str, None] = {}
        for record in new_records:
            sources[record.record_id] = record.source
            for value in self._identifier_values(record):
                existing = index.get(value)
                index[value] = [*existing, record.record_id] if existing else [
                    record.record_id
                ]
                touched_values.setdefault(value)

        new_ids = {record.record_id for record in new_records}
        values_by_owner = dict(shared.values_by_owner)
        dirty: set[str] = set()
        reowned: dict[str, None] = {}
        for value in touched_values:
            record_ids = index[value]
            if len(record_ids) >= 2:
                reowned.setdefault(record_ids[0])
        for owner_id in reowned:
            # Re-derive the owner's owned-value list in its own value order
            # (== the global first-encounter order restricted to this owner,
            # since the owner is by definition each value's first carrier).
            # Deduped like the index insertion: a value a record carries
            # twice is keyed once.
            owned: dict[str, None] = {}
            for value in self._identifier_values(dataset.record(owner_id)):
                if index[value][0] == owner_id and len(index[value]) >= 2:
                    owned.setdefault(value)
            values_by_owner[owner_id] = list(owned)
            if owner_id not in new_ids:
                dirty.add(owner_id)
        return BlockingDelta(
            shared=IdentifierIndex(
                index=index, values_by_owner=values_by_owner, sources=sources
            ),
            dirty_record_ids=frozenset(dirty),
        )

    def candidates_for(
        self, shared: IdentifierIndex, records: Sequence[Record]
    ) -> list[CandidatePair]:
        """Emit the pairs of every identifier value *first seen* in the chunk.

        The serial loop emits pairs value by value, values ordered by the
        dataset position of their first carrier.  Chunks are consecutive
        record ranges, so assigning each value to the chunk containing its
        first carrier keeps the concatenated chunk outputs in exactly that
        value order — and each value's pairs are emitted whole, untouched.
        (Walking the chunk's records and each record's owned values in
        encounter order *is* that value order, and costs only the chunk's
        share of the index instead of a full rescan per chunk.)
        """
        pairs: list[CandidatePair] = []
        for record in records:
            for value in shared.values_by_owner.get(record.record_id, ()):
                record_ids = shared.index[value]
                for i, left_id in enumerate(record_ids):
                    left_source = shared.sources[left_id]
                    for right_id in record_ids[i + 1:]:
                        if left_id == right_id:
                            continue
                        if self.cross_source_only and left_source == shared.sources[right_id]:
                            continue
                        pairs.append(self._make_pair(left_id, right_id))
        return pairs

    @staticmethod
    def _identifier_values(record) -> list[str]:
        values: list[str] = []
        if isinstance(record, SecurityRecord):
            for field in SECURITY_ID_FIELDS:
                normalized = normalize_identifier(getattr(record, field))
                if normalized:
                    # Prefix with the field name so an ISIN can never collide
                    # with a CUSIP that happens to share characters.
                    values.append(f"{field}:{normalized}")
        elif isinstance(record, CompanyRecord):
            for isin in record.security_isins:
                normalized = normalize_identifier(isin)
                if normalized:
                    values.append(f"isin:{normalized}")
        return values
