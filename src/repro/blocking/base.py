"""The blocking interface.

A blocking takes a :class:`~repro.datagen.records.Dataset` and returns
*candidate pairs* — unordered pairs of record ids that the pairwise matcher
will evaluate.  Each candidate remembers which blocking produced it, because
the Pre Graph Cleanup step of GraLMatch treats token-overlap candidates in
very large components specially (Section 4.2.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any

from repro.datagen.records import Dataset, Record
from repro.graphs.graph import canonical_edge


@dataclass(frozen=True)
class CandidatePair:
    """An unordered candidate pair, tagged with its originating blocking."""

    left_id: str
    right_id: str
    blocking: str

    @property
    def key(self) -> tuple[str, str]:
        return canonical_edge(self.left_id, self.right_id)  # type: ignore[return-value]


@dataclass(frozen=True)
class BlockingDelta:
    """Result of one incremental index update (:meth:`Blocking.delta_update`).

    ``shared`` is the updated shared state; ``dirty_record_ids`` are the
    *pre-existing* records whose :meth:`Blocking.candidates_for` output may
    differ under the new state and must therefore be rescored (the newly
    ingested records are always rescored, so they are never listed here).
    """

    shared: Any
    dirty_record_ids: frozenset[str] = field(default_factory=frozenset)


class Blocking(ABC):
    """Base class for candidate pair generators.

    Besides the one-shot :meth:`candidate_pairs` entry point, a blocking may
    opt into the *record-sharded* two-phase protocol (``shardable = True``):

    1. :meth:`prepare` scans the whole dataset once and returns the shared
       state every shard needs (inverted indexes, document frequencies,
       source maps).  This phase is global on purpose — naive dataset
       partitioning would change token document frequencies and per-record
       top-n selections, silently altering the candidates.
    2. :meth:`candidates_for` scores one chunk of records against the
       shared state, embarrassingly parallel across chunks.

    The contract that makes sharded execution byte-identical to serial:
    splitting the dataset's records into consecutive chunks (in dataset
    order), concatenating ``candidates_for(shared, chunk)`` over the chunks
    and de-duplicating with :func:`dedupe_pairs` must reproduce
    ``candidate_pairs(dataset)`` exactly — same pairs, same order, same
    tags.  Shardable blockings therefore implement ``candidate_pairs`` *in
    terms of* the two-phase form, and each blocking owns the rule that
    assigns a pair to exactly one chunk (see the individual blockings).
    """

    #: Name recorded on every emitted candidate pair.
    name: str = "blocking"

    #: Whether this blocking implements the two-phase sharded protocol.
    shardable: bool = False

    #: Whether this blocking implements the incremental index-update protocol
    #: (:meth:`delta_update`) on top of the sharded one.
    delta_capable: bool = False

    @abstractmethod
    def candidate_pairs(self, dataset: Dataset) -> list[CandidatePair]:
        """Return the candidate pairs for ``dataset``."""

    def prepare(self, dataset: Dataset) -> Any:
        """Phase 1 of the sharded protocol: build the chunk-shared state.

        Runs once, in the parent process; the returned object is shipped to
        every worker (for process pools: once per worker, via the pool
        initializer) and must be picklable.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support record-sharded "
            "candidate generation (shardable=False)"
        )

    def candidates_for(
        self, shared: Any, records: Sequence[Record]
    ) -> list[CandidatePair]:
        """Phase 2: the candidate pairs owned by one chunk of records.

        ``records`` is a consecutive slice of the dataset's records in
        dataset order.  Results are raw (not de-duplicated): the engine
        concatenates all chunks and de-duplicates once globally, because a
        duplicate pair's two endpoints may live in different chunks.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support record-sharded "
            "candidate generation (shardable=False)"
        )

    def delta_update(
        self, shared: Any, dataset: Dataset, new_records: Sequence[Record]
    ) -> BlockingDelta:
        """Fold newly ingested records into an existing shared state.

        ``dataset`` is the *full* dataset with ``new_records`` already
        appended (in ingestion order); ``shared`` is the state built for the
        dataset *without* them.  The contract that makes incremental
        ingestion byte-identical to a one-shot batch run:

        1. the returned ``shared`` must equal ``prepare(dataset)`` — the
           delta path may reuse cached derivations (tokenisations, postings)
           but never diverge from the global rebuild, and
        2. for every pre-existing record *not* in ``dirty_record_ids``,
           ``candidates_for(new_shared, [record])`` must equal
           ``candidates_for(old_shared, [record])`` — dirtiness may be
           conservative (listing too many records costs rescoring time, not
           correctness), never optimistic.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support incremental index "
            "updates (delta_capable=False)"
        )

    def partition(self) -> list["Blocking"]:
        """Independent sub-blockings the execution engine may fan out.

        A plain blocking is its own single partition.  Composite blockings
        override this to expose their parts; the engine runs each part as
        one pool task and merges the results in declaration order, so the
        parallel merge keeps the first-blocking-wins de-duplication
        semantics of :class:`~repro.blocking.combine.CombinedBlocking`.
        Record sharding composes with partitioning: the engine shards each
        *part* that is shardable, still merging parts in declaration order.
        """
        return [self]

    def _make_pair(self, left: Record | str, right: Record | str) -> CandidatePair:
        left_id = left if isinstance(left, str) else left.record_id
        right_id = right if isinstance(right, str) else right.record_id
        first, second = canonical_edge(left_id, right_id)
        return CandidatePair(first, second, self.name)


def dedupe_pairs(pairs: list[CandidatePair]) -> list[CandidatePair]:
    """Remove duplicate candidate pairs, keeping the first blocking that found each."""
    seen: set[tuple[str, str]] = set()
    unique: list[CandidatePair] = []
    for pair in pairs:
        if pair.key in seen:
            continue
        seen.add(pair.key)
        unique.append(pair)
    return unique


def recall_of_blocking(pairs: list[CandidatePair], dataset: Dataset) -> float:
    """Share of ground-truth matches covered by the candidate pairs.

    This is the quantity that upper-bounds the pipeline's recall: true pairs
    discarded by the blocking can never be recovered later (Section 5.3.2).
    """
    true_matches = dataset.true_matches()
    if not true_matches:
        return 1.0
    found = {pair.key for pair in pairs}
    return len(true_matches & found) / len(true_matches)
