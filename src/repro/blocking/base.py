"""The blocking interface.

A blocking takes a :class:`~repro.datagen.records.Dataset` and returns
*candidate pairs* — unordered pairs of record ids that the pairwise matcher
will evaluate.  Each candidate remembers which blocking produced it, because
the Pre Graph Cleanup step of GraLMatch treats token-overlap candidates in
very large components specially (Section 4.2.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.datagen.records import Dataset, Record
from repro.graphs.graph import canonical_edge


@dataclass(frozen=True)
class CandidatePair:
    """An unordered candidate pair, tagged with its originating blocking."""

    left_id: str
    right_id: str
    blocking: str

    @property
    def key(self) -> tuple[str, str]:
        return canonical_edge(self.left_id, self.right_id)  # type: ignore[return-value]


class Blocking(ABC):
    """Base class for candidate pair generators."""

    #: Name recorded on every emitted candidate pair.
    name: str = "blocking"

    @abstractmethod
    def candidate_pairs(self, dataset: Dataset) -> list[CandidatePair]:
        """Return the candidate pairs for ``dataset``."""

    def partition(self) -> list["Blocking"]:
        """Independent sub-blockings the execution engine may fan out.

        A plain blocking is its own single partition.  Composite blockings
        override this to expose their parts; the engine runs each part as
        one pool task and merges the results in declaration order, so the
        parallel merge keeps the first-blocking-wins de-duplication
        semantics of :class:`~repro.blocking.combine.CombinedBlocking`.
        """
        return [self]

    def _make_pair(self, left: Record | str, right: Record | str) -> CandidatePair:
        left_id = left if isinstance(left, str) else left.record_id
        right_id = right if isinstance(right, str) else right.record_id
        first, second = canonical_edge(left_id, right_id)
        return CandidatePair(first, second, self.name)


def dedupe_pairs(pairs: list[CandidatePair]) -> list[CandidatePair]:
    """Remove duplicate candidate pairs, keeping the first blocking that found each."""
    seen: set[tuple[str, str]] = set()
    unique: list[CandidatePair] = []
    for pair in pairs:
        if pair.key in seen:
            continue
        seen.add(pair.key)
        unique.append(pair)
    return unique


def recall_of_blocking(pairs: list[CandidatePair], dataset: Dataset) -> float:
    """Share of ground-truth matches covered by the candidate pairs.

    This is the quantity that upper-bounds the pipeline's recall: true pairs
    discarded by the blocking can never be recovered later (Section 5.3.2).
    """
    true_matches = dataset.true_matches()
    if not true_matches:
        return 1.0
    found = {pair.key for pair in pairs}
    return len(true_matches & found) / len(true_matches)
