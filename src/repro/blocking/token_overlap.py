"""Token Overlap blocking.

"Considers each record as the list of tokens resulting from its tokenization
and selects as candidate pairs those involving the record and the top-n
records with most overlapping tokens across different data sources"
(Section 5.3.1).

The implementation builds an inverted token index over the records' textual
attributes, scores co-occurring records by the number of shared tokens
(weighted by inverse token frequency so that ubiquitous corporate terms do
not dominate) and keeps the top-n per record.  This is the blocking that
creates the hard look-alike candidates (Crowdstrike vs Crowdstreet) that the
GraLMatch clean-up later has to deal with.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict

from repro.blocking.base import Blocking, CandidatePair, dedupe_pairs
from repro.datagen.records import Dataset, Record
from repro.registry import register_blocking
from repro.text.tokenize import word_tokenize


@register_blocking("token_overlap")
class TokenOverlapBlocking(Blocking):
    """Top-n most token-overlapping records across different sources."""

    name = "token_overlap"

    def __init__(
        self,
        top_n: int = 5,
        attributes: tuple[str, ...] = ("name", "title"),
        min_token_length: int = 2,
        max_token_frequency: float = 0.25,
    ) -> None:
        if top_n < 1:
            raise ValueError("top_n must be at least 1")
        if not 0.0 < max_token_frequency <= 1.0:
            raise ValueError("max_token_frequency must be in (0, 1]")
        self.top_n = top_n
        self.attributes = attributes
        self.min_token_length = min_token_length
        #: Tokens appearing in more than this share of records are ignored —
        #: they would otherwise produce quadratic blow-ups ("inc", "corp").
        self.max_token_frequency = max_token_frequency

    def candidate_pairs(self, dataset: Dataset) -> list[CandidatePair]:
        record_tokens = {
            record.record_id: self._tokens(record) for record in dataset
        }
        num_records = max(len(record_tokens), 1)

        document_frequency: Counter[str] = Counter()
        for tokens in record_tokens.values():
            document_frequency.update(tokens)

        frequency_cutoff = self.max_token_frequency * num_records
        token_index: dict[str, list[str]] = defaultdict(list)
        for record_id, tokens in record_tokens.items():
            for token in tokens:
                if document_frequency[token] <= frequency_cutoff:
                    token_index[token].append(record_id)

        sources = {record.record_id: record.source for record in dataset}

        pairs: list[CandidatePair] = []
        for record_id, tokens in record_tokens.items():
            scores: dict[str, float] = defaultdict(float)
            for token in tokens:
                candidates = token_index.get(token, ())
                if not candidates:
                    continue
                weight = 1.0 + math.log(num_records / document_frequency[token])
                for other_id in candidates:
                    if other_id == record_id:
                        continue
                    if sources[other_id] == sources[record_id]:
                        continue
                    scores[other_id] += weight
            best = sorted(scores.items(), key=lambda item: (-item[1], item[0]))[: self.top_n]
            for other_id, _ in best:
                pairs.append(self._make_pair(record_id, other_id))
        return dedupe_pairs(pairs)

    def _tokens(self, record: Record) -> set[str]:
        tokens: set[str] = set()
        for attribute in self.attributes:
            value = getattr(record, attribute, None)
            if not value:
                continue
            tokens.update(
                token
                for token in word_tokenize(str(value))
                if len(token) >= self.min_token_length
            )
        return tokens
