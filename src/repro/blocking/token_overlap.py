"""Token Overlap blocking.

"Considers each record as the list of tokens resulting from its tokenization
and selects as candidate pairs those involving the record and the top-n
records with most overlapping tokens across different data sources"
(Section 5.3.1).

The implementation builds an inverted token index over the records' textual
attributes, scores co-occurring records by the number of shared tokens
(weighted by inverse token frequency so that ubiquitous corporate terms do
not dominate) and keeps the top-n per record.  This is the blocking that
creates the hard look-alike candidates (Crowdstrike vs Crowdstreet) that the
GraLMatch clean-up later has to deal with.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from collections.abc import Sequence

from repro.blocking.base import Blocking, BlockingDelta, CandidatePair, dedupe_pairs
from repro.datagen.records import Dataset, Record
from repro.registry import register_blocking
from repro.text.tokenize import word_tokenize


@dataclass(frozen=True)
class TokenIndex:
    """Shared state of the sharded protocol: one global pass over the data.

    Built once by :meth:`TokenOverlapBlocking.prepare`; scoring shards read
    it without touching the dataset again.  Global on purpose: document
    frequencies and the frequency cutoff computed per shard would differ
    from the serial run and change per-record top-n selections.
    """

    #: record id -> sorted token tuple, in dataset order.  Sorted (not a
    #: set) so iteration — and therefore the order IDF weights are summed
    #: in — is identical in the parent and in spawn-started pool workers,
    #: where an unpickled set would iterate under a different hash seed and
    #: 1-ULP summation differences could flip top-n boundary candidates.
    record_tokens: dict[str, tuple[str, ...]]
    #: token -> number of tokenised records containing it.
    document_frequency: Counter
    #: token -> record ids containing it (frequency-cutoff survivors only),
    #: in dataset order.
    token_index: dict[str, list[str]]
    #: record id -> source name.
    sources: dict[str, str]
    #: IDF denominator: records with at least one token.  Token-less records
    #: can never be candidates, so counting them would only dilute the IDF
    #: weights and inflate the frequency cutoff.
    num_tokenised: int


@register_blocking("token_overlap")
class TokenOverlapBlocking(Blocking):
    """Top-n most token-overlapping records across different sources."""

    name = "token_overlap"
    shardable = True
    delta_capable = True

    def __init__(
        self,
        top_n: int = 5,
        attributes: tuple[str, ...] = ("name", "title"),
        min_token_length: int = 2,
        max_token_frequency: float = 0.25,
    ) -> None:
        if top_n < 1:
            raise ValueError("top_n must be at least 1")
        if not 0.0 < max_token_frequency <= 1.0:
            raise ValueError("max_token_frequency must be in (0, 1]")
        self.top_n = top_n
        self.attributes = attributes
        self.min_token_length = min_token_length
        #: Tokens appearing in more than this share of records are ignored —
        #: they would otherwise produce quadratic blow-ups ("inc", "corp").
        self.max_token_frequency = max_token_frequency

    def candidate_pairs(self, dataset: Dataset) -> list[CandidatePair]:
        shared = self.prepare(dataset)
        return dedupe_pairs(self.candidates_for(shared, dataset.records))

    def prepare(self, dataset: Dataset) -> TokenIndex:
        """Build the inverted token index and document frequencies once."""
        record_tokens = {
            record.record_id: tuple(sorted(self._tokens(record)))
            for record in dataset
        }
        document_frequency: Counter[str] = Counter()
        for tokens in record_tokens.values():  # repro-lint: disable=unordered-iteration -- insertion-ordered (dataset order); counting is order-free
            document_frequency.update(tokens)
        sources = {record.record_id: record.source for record in dataset}
        return self._assemble(record_tokens, document_frequency, sources)

    def _assemble(
        self,
        record_tokens: dict[str, tuple[str, ...]],
        document_frequency: Counter,
        sources: dict[str, str],
    ) -> TokenIndex:
        """Assemble the shared state from per-record tokenisations.

        Shared by :meth:`prepare` and :meth:`delta_update`: everything after
        tokenisation — the IDF denominator, the frequency cutoff and the
        inverted index — is a pure function of ``record_tokens`` (in dataset
        order), so building it here from cached tokenisations is identical
        to a full :meth:`prepare` by construction.
        """
        num_tokenised = sum(1 for tokens in record_tokens.values() if tokens)  # repro-lint: disable=unordered-iteration -- integer count; order-free
        num_tokenised = max(num_tokenised, 1)

        frequency_cutoff = self.max_token_frequency * num_tokenised
        token_index: dict[str, list[str]] = defaultdict(list)
        for record_id, tokens in record_tokens.items():  # repro-lint: disable=unordered-iteration -- insertion-ordered: dataset order, then appended new records
            for token in tokens:
                if document_frequency[token] <= frequency_cutoff:
                    token_index[token].append(record_id)

        return TokenIndex(
            record_tokens=record_tokens,
            document_frequency=document_frequency,
            token_index=dict(token_index),
            sources=sources,
            num_tokenised=num_tokenised,
        )

    def delta_update(
        self, shared: TokenIndex, dataset: Dataset, new_records: Sequence[Record]
    ) -> BlockingDelta:
        """Fold new records in, reusing every existing tokenisation.

        The expensive per-record work — attribute tokenisation — runs only
        for the new records; document frequencies update incrementally and
        the inverted index is re-assembled from the cached token tuples (a
        cheap linear pass that cannot be skipped: the IDF denominator and
        the frequency cutoff both move whenever tokenised records arrive,
        which can flip any token's cutoff status).

        Dirtiness is honest about the same global coupling: IDF weights are
        ``1 + log(N / df)``, so adding *any* tokenised record shifts every
        weight non-uniformly and may reorder any record's top-n selection —
        all previously tokenised records are therefore dirty.  Token-less
        new records touch nothing and dirty nothing.
        """
        new_tokens = {
            record.record_id: tuple(sorted(self._tokens(record)))
            for record in new_records
        }
        record_tokens = {**shared.record_tokens, **new_tokens}
        document_frequency: Counter[str] = Counter(shared.document_frequency)
        for tokens in new_tokens.values():  # repro-lint: disable=unordered-iteration -- insertion-ordered (new_records order); counting is order-free
            document_frequency.update(tokens)
        sources = dict(shared.sources)
        for record in new_records:
            sources[record.record_id] = record.source

        if any(new_tokens.values()):
            dirty = frozenset(
                record_id
                for record_id, tokens in shared.record_tokens.items()
                if tokens
            )
        else:
            dirty = frozenset()
        return BlockingDelta(
            shared=self._assemble(record_tokens, document_frequency, sources),
            dirty_record_ids=dirty,
        )

    def candidates_for(
        self, shared: TokenIndex, records: Sequence[Record]
    ) -> list[CandidatePair]:
        """Score one chunk of records against the global index.

        A pair is owned by the record whose top-n selection produced it, so
        every chunk emits exactly the pairs the serial per-record loop emits
        for its records — chunk concatenation reproduces the serial stream.
        """
        pairs: list[CandidatePair] = []
        for record in records:
            record_id = record.record_id
            tokens = shared.record_tokens[record_id]
            scores: dict[str, float] = defaultdict(float)
            for token in tokens:
                candidates = shared.token_index.get(token, ())
                if not candidates:
                    continue
                weight = 1.0 + math.log(
                    shared.num_tokenised / shared.document_frequency[token]
                )
                for other_id in candidates:
                    if other_id == record_id:
                        continue
                    if shared.sources[other_id] == shared.sources[record_id]:
                        continue
                    scores[other_id] += weight
            best = sorted(scores.items(), key=lambda item: (-item[1], item[0]))[: self.top_n]
            for other_id, _ in best:
                pairs.append(self._make_pair(record_id, other_id))
        return pairs

    def _tokens(self, record: Record) -> set[str]:
        tokens: set[str] = set()
        for attribute in self.attributes:
            value = getattr(record, attribute, None)
            if not value:
                continue
            tokens.update(
                token
                for token in word_tokenize(str(value))
                if len(token) >= self.min_token_length
            )
        return tokens
